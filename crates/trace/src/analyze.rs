//! Recovery forensics: causal per-packet timelines, per-stage latency
//! histograms, repair-source attribution, and anomaly detection over a
//! recorded [`ProtocolEvent`] stream.
//!
//! The paper's evaluation is entirely about *recovery behaviour* — how
//! fast a loss is detected (§2.1), who repairs it (§2.2), and how many
//! redundant copies the repair costs (§2.3). This module answers the
//! question the flat counters cannot: *why did this particular
//! sequence take that long to recover at that host?*
//!
//! The pipeline is: collect records (live via [`CollectorSink`], or
//! replayed from a [`JsonLinesSink`](crate::JsonLinesSink) file via
//! [`parse_json_lines`]), then [`analyze`] them into a
//! [`RecoveryReport`]:
//!
//! * one [`RecoveryTimeline`] per `(host, seq)` recovery — loss
//!   detected → NACK sent → logger serve / re-multicast → repair
//!   received, each stage time-stamped;
//! * per-stage latency histograms whose sum telescopes to the
//!   end-to-end recovery latency;
//! * a repair-source breakdown (primary / secondary / replica / sender
//!   / statistical-ACK re-multicast / heartbeat payload / late
//!   original);
//! * [`Anomaly`] detections: unrecovered gaps at end-of-run, NACK
//!   fan-in above the paper's one-request-per-site bound, duplicate
//!   repairs beyond the statistical-ACK expectation, heartbeat silence
//!   longer than `h_max`, and stalled statistical-ACK settlements.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use lbrm_wire::{HostId, Seq};

use crate::{Histogram, HistogramSnapshot, ProtocolEvent, TraceSink};

/// One recorded event: timestamp, emitting host, event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Nanoseconds on the emitting clock.
    pub at_nanos: u64,
    /// The emitting host ([`crate::Tracer::UNTAGGED`] if never tagged).
    pub host: HostId,
    /// The event itself.
    pub event: ProtocolEvent,
}

/// A [`TraceSink`] that retains every record in memory for analysis —
/// the live-run feeder for [`analyze`].
#[derive(Debug, Default)]
pub struct CollectorSink {
    records: Mutex<Vec<TraceRecord>>,
}

impl CollectorSink {
    /// A copy of everything recorded so far, in emission order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Drains the collected records.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records.lock().unwrap())
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().unwrap().is_empty()
    }
}

impl TraceSink for CollectorSink {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        self.records.lock().unwrap().push(TraceRecord {
            at_nanos,
            host,
            event: event.clone(),
        });
    }
}

/// A [`TraceSink`] that forwards every record to several sinks — lets a
/// scenario aggregate into its [`MetricsRegistry`](crate::MetricsRegistry)
/// *and* collect raw records for forensics in the same run.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Fans records out to each of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        for s in &self.sinks {
            s.record(at_nanos, host, event);
        }
    }
}

/// A [`FanoutSink`] variant that serializes each *whole-record* fanout
/// under one lock. With plain [`FanoutSink`], two endpoint threads
/// recording concurrently can interleave between the inner sinks, so a
/// JSONL capture and a live doctor fed from the same fanout may observe
/// *different* record orders. The serial variant guarantees every inner
/// sink sees the identical interleaving — which is what makes a capture
/// written next to a live [`DoctorSidecar`](crate::doctor::DoctorSidecar)
/// replayable as the exact stream the sidecar analyzed.
pub struct SerialFanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
    gate: Mutex<()>,
}

impl SerialFanoutSink {
    /// Fans records out to each of `sinks`, in order, one record at a
    /// time across all calling threads.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        SerialFanoutSink {
            sinks,
            gate: Mutex::new(()),
        }
    }
}

impl std::fmt::Debug for SerialFanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerialFanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TraceSink for SerialFanoutSink {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        let _gate = self.gate.lock().unwrap();
        for s in &self.sinks {
            s.record(at_nanos, host, event);
        }
    }
}

// ---------------------------------------------------------------------
// JSONL replay
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum FieldVal {
    Num(u64),
    Float(f64),
    Str(String),
}

impl FieldVal {
    fn as_u64(&self) -> Option<u64> {
        match self {
            FieldVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            FieldVal::Num(n) => Some(*n as f64),
            FieldVal::Float(f) => Some(*f),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            FieldVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses the flat one-level JSON objects [`ProtocolEvent::to_json`]
/// writes (hand-rolled; the environment has no serde). Values never
/// contain escapes, commas, or nested structure.
fn parse_fields(line: &str) -> Option<BTreeMap<String, FieldVal>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = BTreeMap::new();
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        let parsed = if let Some(s) = value.strip_prefix('"') {
            FieldVal::Str(s.strip_suffix('"')?.to_owned())
        } else if let Ok(n) = value.parse::<u64>() {
            FieldVal::Num(n)
        } else {
            FieldVal::Float(value.parse::<f64>().ok()?)
        };
        fields.insert(key.to_owned(), parsed);
    }
    Some(fields)
}

/// Interns a repair-carrier kind back to the `&'static str` the
/// receiver emits.
fn intern_repair_kind(s: &str) -> &'static str {
    match s {
        "retrans" => "retrans",
        "data" => "data",
        "heartbeat" => "heartbeat",
        _ => "other",
    }
}

/// Interns a role label back to the `&'static str` machines announce.
pub(crate) fn intern_role(s: &str) -> &'static str {
    match s {
        "sender" => "sender",
        "receiver" => "receiver",
        "logger_primary" => "logger_primary",
        "logger_secondary" => "logger_secondary",
        "logger_replica" => "logger_replica",
        _ => "other",
    }
}

/// Interns a wire packet-kind label (the sim's `NetPacket` labels).
fn intern_net_kind(s: &str) -> &'static str {
    const KINDS: &[&str] = &[
        "data",
        "heartbeat",
        "nack",
        "retrans",
        "log-ack",
        "acker-select",
        "acker-volunteer",
        "packet-ack",
        "discovery-query",
        "discovery-reply",
        "locate-primary",
        "primary-is",
        "repl-update",
        "repl-ack",
        "srm-session",
        "srm-nack",
        "srm-repair",
        "elect-prepare",
        "elect-promise",
        "term-announce",
    ];
    KINDS.iter().find(|k| **k == s).copied().unwrap_or("other")
}

/// Parses one [`ProtocolEvent::to_json`] line back into a
/// [`TraceRecord`]. Returns `None` for malformed or unknown lines.
pub fn parse_json_line(line: &str) -> Option<TraceRecord> {
    let f = parse_fields(line)?;
    let at_nanos = f.get("at_ns")?.as_u64()?;
    let host = HostId(f.get("host")?.as_u64()?);
    let key = f.get("event")?.as_str()?;
    let seq = |name: &str| {
        f.get(name)
            .and_then(FieldVal::as_u64)
            .map(|n| Seq(n as u32))
    };
    let num = |name: &str| f.get(name).and_then(FieldVal::as_u64);
    let host_of = |name: &str| f.get(name).and_then(FieldVal::as_u64).map(HostId);
    let event = match key {
        "data_sent" => ProtocolEvent::DataSent {
            seq: seq("seq")?,
            epoch: lbrm_wire::EpochId(num("epoch")? as u32),
        },
        "heartbeat_sent" => ProtocolEvent::HeartbeatSent {
            seq: seq("seq")?,
            hb_index: num("hb_index")? as u32,
        },
        "gap_detected" => ProtocolEvent::GapDetected {
            first: seq("first")?,
            last: seq("last")?,
        },
        "nack_sent" => ProtocolEvent::NackSent {
            target: host_of("target")?,
            packets: num("packets")? as u32,
            first: seq("first")?,
            last: seq("last")?,
        },
        "nack_received" => ProtocolEvent::NackReceived {
            from: host_of("from")?,
            packets: num("packets")? as u32,
        },
        "retrans_served_unicast" | "retrans_served_multicast" => ProtocolEvent::RetransServed {
            seq: seq("seq")?,
            multicast: key == "retrans_served_multicast",
            to: host_of("to")?,
        },
        "remulticast" => ProtocolEvent::Remulticast {
            seq: seq("seq")?,
            missing: num("missing")? as u32,
        },
        "acker_selected" => ProtocolEvent::AckerSelected {
            epoch: lbrm_wire::EpochId(num("epoch")? as u32),
            p_ack: f.get("p_ack")?.as_f64()?,
        },
        "acker_volunteered" => ProtocolEvent::AckerVolunteered {
            epoch: lbrm_wire::EpochId(num("epoch")? as u32),
        },
        "epoch_active" => ProtocolEvent::EpochActive {
            epoch: lbrm_wire::EpochId(num("epoch")? as u32),
            ackers: num("ackers")? as u32,
        },
        "settled_complete" | "settled_incomplete" => ProtocolEvent::Settled {
            seq: seq("seq")?,
            complete: key == "settled_complete",
        },
        "t_wait_updated" => ProtocolEvent::TWaitUpdated {
            t_wait_nanos: num("t_wait_ns")?,
        },
        "congestion_suspected" => ProtocolEvent::CongestionSuspected {
            streak: num("streak")? as u32,
        },
        "recovered" => ProtocolEvent::Recovered {
            seq: seq("seq")?,
            latency_nanos: num("latency_ns")?,
        },
        "recovery_abandoned" => ProtocolEvent::RecoveryAbandoned { seq: seq("seq")? },
        "repair_received" => ProtocolEvent::RepairReceived {
            seq: seq("seq")?,
            from: host_of("from")?,
            kind: intern_repair_kind(f.get("kind")?.as_str()?),
        },
        "repair_duplicate" => ProtocolEvent::RepairDuplicate {
            seq: seq("seq")?,
            from: host_of("from")?,
        },
        "freshness_lost" => ProtocolEvent::FreshnessLost,
        "freshness_restored" => ProtocolEvent::FreshnessRestored,
        "buffer_released" => ProtocolEvent::BufferReleased {
            up_to: seq("up_to")?,
        },
        "packet_logged" => ProtocolEvent::PacketLogged { seq: seq("seq")? },
        "primary_unresponsive" => ProtocolEvent::PrimaryUnresponsive {
            primary: host_of("primary")?,
        },
        "failover_promoted" => ProtocolEvent::FailoverPromoted {
            new_primary: host_of("new_primary")?,
        },
        "term_elected" => ProtocolEvent::TermElected {
            term: num("term")? as u32,
            leader: host_of("leader")?,
        },
        "stale_term_fenced" => ProtocolEvent::StaleTermFenced {
            from: host_of("from")?,
            term: num("term")? as u32,
        },
        "authority_serve" => ProtocolEvent::AuthorityServe {
            seq: seq("seq")?,
            term: num("term")? as u32,
        },
        "role_announced" => ProtocolEvent::RoleAnnounced {
            role: intern_role(f.get("role")?.as_str()?),
        },
        "net_unicast" | "net_multicast" => ProtocolEvent::NetPacket {
            kind: intern_net_kind(f.get("kind")?.as_str()?),
            multicast: key == "net_multicast",
            copies: num("copies")? as u32,
        },
        _ => return None,
    };
    Some(TraceRecord {
        at_nanos,
        host,
        event,
    })
}

/// Parses a whole JSON-lines trace, returning the records plus the
/// number of non-blank lines that failed to parse (a truncated final
/// line from an unflushed writer shows up here).
pub fn parse_json_lines(text: &str) -> (Vec<TraceRecord>, usize) {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json_line(line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    (records, skipped)
}

// ---------------------------------------------------------------------
// Timelines
// ---------------------------------------------------------------------

/// Who supplied the repair that closed a recovery timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairSource {
    /// Retransmission from the primary logging server.
    Primary,
    /// Retransmission from a site/regional secondary logger (§2.2.1).
    Secondary,
    /// Retransmission from a primary replica (§2.2.3).
    Replica,
    /// Retransmission straight from the sender's transmit buffer.
    Sender,
    /// Statistical-ACK re-multicast of the original data (§2.3.2).
    Remulticast,
    /// Heartbeat repeat-payload fill (§7).
    Heartbeat,
    /// The late original finally arrived on its own.
    LateOriginal,
    /// The repair carrier could not be attributed.
    Unknown,
}

impl RepairSource {
    /// Stable label for breakdown maps and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RepairSource::Primary => "primary",
            RepairSource::Secondary => "secondary",
            RepairSource::Replica => "replica",
            RepairSource::Sender => "sender",
            RepairSource::Remulticast => "remulticast",
            RepairSource::Heartbeat => "heartbeat",
            RepairSource::LateOriginal => "late_original",
            RepairSource::Unknown => "unknown",
        }
    }
}

/// How a recovery timeline ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The gap was filled.
    Recovered,
    /// The receiver gave up (reliability mode or attempt exhaustion).
    Abandoned,
    /// Still open at end-of-run — an anomaly.
    Unrecovered,
}

/// The causal story of one `(host, seq)` recovery.
#[derive(Debug, Clone)]
pub struct RecoveryTimeline {
    /// The recovering receiver (or logger).
    pub host: HostId,
    /// The lost sequence.
    pub seq: Seq,
    /// When the source originally multicast it (from `DataSent`).
    pub sent_at_nanos: Option<u64>,
    /// When the gap was detected at `host`.
    pub detected_at_nanos: u64,
    /// When the first NACK for it left `host`.
    pub first_nack_at_nanos: Option<u64>,
    /// NACK packets sent for it from `host` (retries included).
    pub nacks_sent: u32,
    /// When a logger/sender served it (retrans or re-multicast).
    pub served_at_nanos: Option<u64>,
    /// The serving host.
    pub served_by: Option<HostId>,
    /// When the repair arrived at `host`.
    pub repaired_at_nanos: Option<u64>,
    /// Attributed repair source.
    pub source: RepairSource,
    /// Terminal state.
    pub outcome: RecoveryOutcome,
    /// End-to-end latency reported by the receiver's `Recovered` event.
    pub recovery_latency_nanos: Option<u64>,
}

impl RecoveryTimeline {
    /// Loss-to-detection latency (needs the original `DataSent`).
    pub fn detection_nanos(&self) -> Option<u64> {
        self.sent_at_nanos
            .map(|s| self.detected_at_nanos.saturating_sub(s))
    }

    /// Detection-to-first-NACK latency (the `nack_delay` holdoff).
    pub fn request_nanos(&self) -> Option<u64> {
        self.first_nack_at_nanos
            .map(|n| n.saturating_sub(self.detected_at_nanos))
    }

    /// First-NACK-to-serve latency (request propagation + log lookup).
    pub fn serve_nanos(&self) -> Option<u64> {
        match (self.served_at_nanos, self.first_nack_at_nanos) {
            (Some(s), Some(n)) => Some(s.saturating_sub(n)),
            _ => None,
        }
    }

    /// Serve-to-repair-arrival latency (the return path).
    pub fn return_nanos(&self) -> Option<u64> {
        match (self.repaired_at_nanos, self.served_at_nanos) {
            (Some(r), Some(s)) => Some(r.saturating_sub(s)),
            _ => None,
        }
    }

    /// `true` when the stage timestamps are monotone and telescope
    /// exactly to the reported end-to-end recovery latency.
    pub fn stages_telescope(&self) -> bool {
        let (Some(nack), Some(served), Some(repaired), Some(total)) = (
            self.first_nack_at_nanos,
            self.served_at_nanos,
            self.repaired_at_nanos,
            self.recovery_latency_nanos,
        ) else {
            return false;
        };
        self.detected_at_nanos <= nack
            && nack <= served
            && served <= repaired
            && repaired - self.detected_at_nanos == total
    }

    /// One-line human rendering of the causal chain.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "host {} seq {}: detected@{:.3}ms",
            self.host.raw(),
            self.seq.raw(),
            self.detected_at_nanos as f64 / 1e6
        );
        if let Some(n) = self.request_nanos() {
            let _ = write!(s, " -({:.3}ms)-> nack", n as f64 / 1e6);
        }
        if let Some(n) = self.serve_nanos() {
            let by = self.served_by.map_or(u64::MAX, HostId::raw);
            let _ = write!(s, " -({:.3}ms)-> served by {by}", n as f64 / 1e6);
        }
        if let Some(n) = self.return_nanos() {
            let _ = write!(s, " -({:.3}ms)-> repaired", n as f64 / 1e6);
        }
        let _ = match self.outcome {
            RecoveryOutcome::Recovered => write!(
                s,
                " [{} in {:.3}ms]",
                self.source.label(),
                self.recovery_latency_nanos.unwrap_or(0) as f64 / 1e6
            ),
            RecoveryOutcome::Abandoned => write!(s, " [abandoned]"),
            RecoveryOutcome::Unrecovered => write!(s, " [UNRECOVERED]"),
        };
        s
    }
}

// ---------------------------------------------------------------------
// Anomalies
// ---------------------------------------------------------------------

/// A protocol-health violation detected in the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Anomaly {
    /// A detected gap was never filled or abandoned by end-of-run.
    UnrecoveredGap {
        /// The stuck receiver.
        host: HostId,
        /// The still-missing sequence.
        seq: Seq,
        /// When its loss was detected.
        detected_at_nanos: u64,
    },
    /// More NACK packets for one sequence than the paper's
    /// one-request-per-site bound allows (§2.2.1).
    NackImplosion {
        /// The over-requested sequence.
        seq: Seq,
        /// NACK packets observed for it.
        requests: u64,
        /// The configured/derived bound.
        bound: u64,
    },
    /// More redundant repairs of one sequence than the statistical-ACK
    /// expectation (§2.3).
    ExcessDuplicateRepairs {
        /// The over-served receiver.
        host: HostId,
        /// The over-repaired sequence.
        seq: Seq,
        /// Redundant copies observed.
        duplicates: u64,
        /// The configured bound.
        bound: u64,
    },
    /// A source went silent for longer than `h_max` (plus slack) — the
    /// variable-heartbeat guarantee (§2.1.2) was violated.
    HeartbeatSilence {
        /// The silent source.
        host: HostId,
        /// Longest observed transmission gap.
        gap_nanos: u64,
        /// The configured `h_max`.
        h_max_nanos: u64,
    },
    /// A data packet in an active statistical-ACK epoch never settled.
    StalledSettlement {
        /// The unsettled sequence.
        seq: Seq,
        /// When it was sent.
        sent_at_nanos: u64,
    },
    /// Two different leaders were announced for the same election term —
    /// the election safety invariant was violated outright.
    TermConflict {
        /// The contested term.
        term: u32,
        /// First announced leader.
        a: HostId,
        /// Conflicting announced leader.
        b: HostId,
    },
    /// A repair served by a deposed primary under a stale term was
    /// *accepted* by a receiver — fencing failed and two authorities
    /// effectively served the group (split-brain double-serve).
    SplitBrainServe {
        /// The doubly-served sequence.
        seq: Seq,
        /// The stale authority that served it.
        by: HostId,
        /// The stale term it served under.
        term: u32,
        /// The newest elected term at that point in the stream.
        current: u32,
    },
}

impl Anomaly {
    /// Stable kind label for JSON and counting.
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::UnrecoveredGap { .. } => "unrecovered_gap",
            Anomaly::NackImplosion { .. } => "nack_implosion",
            Anomaly::ExcessDuplicateRepairs { .. } => "excess_duplicate_repairs",
            Anomaly::HeartbeatSilence { .. } => "heartbeat_silence",
            Anomaly::StalledSettlement { .. } => "stalled_settlement",
            Anomaly::TermConflict { .. } => "term_conflict",
            Anomaly::SplitBrainServe { .. } => "split_brain_serve",
        }
    }

    /// Human one-liner.
    pub fn describe(&self) -> String {
        match self {
            Anomaly::UnrecoveredGap {
                host,
                seq,
                detected_at_nanos,
            } => format!(
                "unrecovered gap: host {} seq {} detected at {:.3}ms never filled",
                host.raw(),
                seq.raw(),
                *detected_at_nanos as f64 / 1e6
            ),
            Anomaly::NackImplosion {
                seq,
                requests,
                bound,
            } => format!(
                "NACK implosion: seq {} requested {requests} times (site bound {bound})",
                seq.raw()
            ),
            Anomaly::ExcessDuplicateRepairs {
                host,
                seq,
                duplicates,
                bound,
            } => format!(
                "excess duplicate repairs: host {} got seq {} redundantly {duplicates} times (bound {bound})",
                host.raw(),
                seq.raw()
            ),
            Anomaly::HeartbeatSilence {
                host,
                gap_nanos,
                h_max_nanos,
            } => format!(
                "heartbeat silence: source {} quiet for {:.1}s (h_max {:.1}s)",
                host.raw(),
                *gap_nanos as f64 / 1e9,
                *h_max_nanos as f64 / 1e9
            ),
            Anomaly::StalledSettlement { seq, sent_at_nanos } => format!(
                "stalled settlement: seq {} (sent at {:.3}ms) never settled",
                seq.raw(),
                *sent_at_nanos as f64 / 1e6
            ),
            Anomaly::TermConflict { term, a, b } => format!(
                "term conflict: term {term} announced with two leaders ({} and {})",
                a.raw(),
                b.raw()
            ),
            Anomaly::SplitBrainServe {
                seq,
                by,
                term,
                current,
            } => format!(
                "split-brain serve: host {} served seq {} under stale term {term} (current {current}) and the repair was accepted",
                by.raw(),
                seq.raw()
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------

/// Tunables for [`analyze`]. The defaults match the paper's parameters
/// (`h_max` = 32 s) and a small-scenario statistical-ACK expectation.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// `h_max` for the heartbeat-silence detector; `None` disables it.
    /// The detector allows 1.5× slack over this.
    pub h_max_nanos: Option<u64>,
    /// Per-sequence bound on primary-bound NACK packets for the
    /// implosion detector.
    /// `None` derives `secondaries + 2` from announced roles (and
    /// disables the detector when no secondaries exist — central
    /// logging *is* the implosion baseline being measured).
    pub nack_fan_in_bound: Option<u64>,
    /// Redundant repair copies tolerated per `(receiver, sequence)`
    /// before flagging.
    pub duplicate_bound: u64,
    /// Grace period before an unsettled statistical-ACK packet near
    /// end-of-run counts as stalled.
    pub settle_slack_nanos: u64,
    /// Largest `GapDetected` span expanded into per-seq timelines;
    /// wider spans are truncated (and counted in the report).
    pub max_gap_span: u64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            h_max_nanos: Some(32_000_000_000),
            nack_fan_in_bound: None,
            duplicate_bound: 3,
            settle_slack_nanos: 10_000_000_000,
            max_gap_span: 4096,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct OpenRecovery {
    pub(crate) detected_at: u64,
    pub(crate) first_nack_at: Option<u64>,
    pub(crate) nacks_sent: u32,
    pub(crate) served_at: Option<u64>,
    pub(crate) served_by: Option<HostId>,
    pub(crate) repaired_at: Option<u64>,
    pub(crate) source: RepairSource,
}

/// Approximate resident bytes of one open-recovery map entry (payload +
/// key + node overhead) — the unit both analyzers meter live state in.
pub(crate) fn open_entry_bytes() -> u64 {
    (std::mem::size_of::<OpenRecovery>() + 12 + 32) as u64
}

/// Resident-state accounting for an analysis pass: how much live
/// correlation state the analyzer held at its peak, and what (if
/// anything) it had to shed to stay within budget. For the batch
/// [`analyze`] this records what materializing the whole capture cost;
/// for the streaming [`OnlineAnalyzer`](crate::OnlineAnalyzer) it is
/// the first-class metric the `trace_doctor --mem-budget` CI gate
/// asserts on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// `true` when produced by the streaming correlator.
    pub streamed: bool,
    /// Most `(host, seq)` timelines open at once.
    pub peak_live_timelines: u64,
    /// Approximate peak resident bytes of the analyzer's state (for
    /// batch, this includes the materialized record vector).
    pub peak_resident_bytes: u64,
    /// Open timelines force-evicted by the live-timeline cap (streaming
    /// only; fidelity was truncated, but no anomaly is implied).
    pub force_evicted: u64,
    /// Open timelines evicted by the age-out horizon (streaming only;
    /// each also raises an unrecovered-gap anomaly).
    pub aged_out: u64,
    /// Records that arrived with a timestamp below their predecessor's
    /// (the batch analyzer sorts; the streaming one correlates in
    /// arrival order, so a nonzero count here flags caution).
    pub out_of_order: u64,
}

/// The full forensic result of [`analyze`].
#[derive(Debug)]
pub struct RecoveryReport {
    /// Every closed (and, at end-of-run, still-open) timeline, in
    /// close order.
    pub timelines: Vec<RecoveryTimeline>,
    /// Timelines that ended in recovery.
    pub recovered: usize,
    /// Timelines the receiver abandoned.
    pub abandoned: usize,
    /// Timelines still open at end-of-run.
    pub unrecovered: usize,
    /// Loss-to-detection latency distribution.
    pub detection: HistogramSnapshot,
    /// Detection-to-first-NACK latency distribution.
    pub request: HistogramSnapshot,
    /// NACK-to-serve latency distribution.
    pub serve: HistogramSnapshot,
    /// Serve-to-repair latency distribution.
    pub return_leg: HistogramSnapshot,
    /// End-to-end recovery latency distribution (matches the
    /// receivers' `recovery_latency` histogram).
    pub total: HistogramSnapshot,
    /// Recovered-timeline count per repair source label.
    pub sources: BTreeMap<&'static str, u64>,
    /// Redundant repair copies observed (`repair_duplicate` events).
    pub duplicate_repairs: u64,
    /// Highest per-sequence NACK fan-in observed at the primary
    /// (site-local NACKs absorbed by secondaries are excluded).
    pub max_nack_fan_in: u64,
    /// Recovered timelines whose stage timestamps telescope exactly to
    /// the reported end-to-end latency.
    pub telescoping: usize,
    /// `GapDetected` spans wider than the configured cap (their tails
    /// were not expanded into timelines).
    pub truncated_gap_spans: u64,
    /// Packets from fenced (deposed) primaries that machines rejected —
    /// informational: each one is the fencing mechanism *working*.
    pub fenced_rejects: u64,
    /// Detected protocol-health violations.
    pub anomalies: Vec<Anomaly>,
    /// Resident-state accounting (peak live timelines/bytes, evictions).
    pub stream: StreamStats,
}

impl RecoveryReport {
    /// `true` when no anomaly was detected.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    pub(crate) fn close(
        timelines: &mut Vec<RecoveryTimeline>,
        host: HostId,
        seq: Seq,
        open: OpenRecovery,
        sent_at: Option<u64>,
        outcome: RecoveryOutcome,
        latency: Option<u64>,
    ) {
        timelines.push(RecoveryTimeline {
            host,
            seq,
            sent_at_nanos: sent_at,
            detected_at_nanos: open.detected_at,
            first_nack_at_nanos: open.first_nack_at,
            nacks_sent: open.nacks_sent,
            served_at_nanos: open.served_at,
            served_by: open.served_by,
            repaired_at_nanos: open.repaired_at,
            source: open.source,
            outcome,
            recovery_latency_nanos: latency,
        });
    }

    /// Renders the report as a human-readable summary (slowest
    /// recoveries, stage histograms, source breakdown, anomalies).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "recovery timelines: {} ({} recovered, {} abandoned, {} unrecovered)",
            self.timelines.len(),
            self.recovered,
            self.abandoned,
            self.unrecovered
        );
        let _ = writeln!(
            s,
            "stage consistency: {}/{} recovered timelines telescope exactly",
            self.telescoping, self.recovered
        );
        for (name, h) in [
            ("detection", &self.detection),
            ("request", &self.request),
            ("serve", &self.serve),
            ("return", &self.return_leg),
            ("total", &self.total),
        ] {
            if h.count() > 0 {
                let _ = writeln!(
                    s,
                    "  stage {name:<10} n={:<5} mean={:.1?} p95={:.1?} max={:.1?}",
                    h.count(),
                    h.mean(),
                    h.percentile(0.95),
                    h.max()
                );
            }
        }
        if !self.sources.is_empty() {
            let _ = writeln!(s, "repair sources:");
            for (src, n) in &self.sources {
                let _ = writeln!(s, "  {src:<14} {n:>8}");
            }
        }
        let _ = writeln!(
            s,
            "duplicate repairs: {}; max NACK fan-in per seq: {}",
            self.duplicate_repairs, self.max_nack_fan_in
        );
        if self.fenced_rejects > 0 {
            let _ = writeln!(
                s,
                "fenced rejects: {} stale-primary packets dropped",
                self.fenced_rejects
            );
        }
        let _ = writeln!(
            s,
            "resident state ({}): peak {} live timelines, ~{:.1} KiB",
            if self.stream.streamed {
                "streamed"
            } else {
                "batch"
            },
            self.stream.peak_live_timelines,
            self.stream.peak_resident_bytes as f64 / 1024.0
        );
        if self.stream.force_evicted > 0 {
            let _ = writeln!(
                s,
                "note: {} open timelines force-evicted by the live-timeline cap",
                self.stream.force_evicted
            );
        }
        if self.stream.aged_out > 0 {
            let _ = writeln!(
                s,
                "note: {} open timelines aged out past the horizon",
                self.stream.aged_out
            );
        }
        if self.stream.out_of_order > 0 {
            let _ = writeln!(
                s,
                "note: {} records arrived out of timestamp order",
                self.stream.out_of_order
            );
        }
        if self.truncated_gap_spans > 0 {
            let _ = writeln!(
                s,
                "note: {} gap spans exceeded the expansion cap and were truncated",
                self.truncated_gap_spans
            );
        }
        let mut slowest: Vec<&RecoveryTimeline> = self
            .timelines
            .iter()
            .filter(|t| t.outcome == RecoveryOutcome::Recovered)
            .collect();
        slowest.sort_by_key(|t| std::cmp::Reverse(t.recovery_latency_nanos.unwrap_or(0)));
        if !slowest.is_empty() {
            let _ = writeln!(s, "slowest recoveries:");
            for t in slowest.iter().take(5) {
                let _ = writeln!(s, "  {}", t.render());
            }
        }
        if self.anomalies.is_empty() {
            let _ = writeln!(s, "anomalies: none");
        } else {
            let _ = writeln!(s, "anomalies ({}):", self.anomalies.len());
            for a in &self.anomalies {
                let _ = writeln!(s, "  {}", a.describe());
            }
        }
        s
    }

    /// Machine-readable JSON summary (hand-rolled; no serde).
    pub fn to_json(&self) -> String {
        fn stage(s: &mut String, name: &str, h: &HistogramSnapshot) {
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"mean_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
                h.count(),
                h.mean().as_nanos(),
                h.percentile(0.95).as_nanos(),
                h.max().as_nanos()
            );
        }
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"timelines\":{},\"recovered\":{},\"abandoned\":{},\"unrecovered\":{},\"telescoping\":{},",
            self.timelines.len(),
            self.recovered,
            self.abandoned,
            self.unrecovered,
            self.telescoping
        );
        s.push_str("\"stages\":{");
        for (i, (name, h)) in [
            ("detection", &self.detection),
            ("request", &self.request),
            ("serve", &self.serve),
            ("return", &self.return_leg),
            ("total", &self.total),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            stage(&mut s, name, h);
        }
        s.push_str("},\"sources\":{");
        for (i, (src, n)) in self.sources.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{src}\":{n}");
        }
        let _ = write!(
            s,
            "}},\"duplicate_repairs\":{},\"max_nack_fan_in\":{},\"truncated_gap_spans\":{},\"fenced_rejects\":{},",
            self.duplicate_repairs, self.max_nack_fan_in, self.truncated_gap_spans, self.fenced_rejects
        );
        let _ = write!(
            s,
            "\"stream\":{{\"streamed\":{},\"peak_live_timelines\":{},\"peak_resident_bytes\":{},\
             \"force_evicted\":{},\"aged_out\":{},\"out_of_order\":{}}},",
            self.stream.streamed,
            self.stream.peak_live_timelines,
            self.stream.peak_resident_bytes,
            self.stream.force_evicted,
            self.stream.aged_out,
            self.stream.out_of_order
        );
        s.push_str("\"anomalies\":[");
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"kind\":\"{}\",\"detail\":\"{}\"}}",
                a.kind(),
                a.describe()
            );
        }
        let _ = write!(s, "],\"clean\":{}}}", self.is_clean());
        s
    }
}

/// Correlates `records` into recovery timelines, computes per-stage
/// histograms and the repair-source breakdown, and runs the anomaly
/// detectors. Records are sorted by timestamp internally, so both live
/// collections and concatenated replay files work.
pub fn analyze(records: &[TraceRecord], cfg: &AnalyzeConfig) -> RecoveryReport {
    let out_of_order = records
        .windows(2)
        .filter(|w| w[1].at_nanos < w[0].at_nanos)
        .count() as u64;
    let mut recs: Vec<&TraceRecord> = records.iter().collect();
    recs.sort_by_key(|r| r.at_nanos);
    let end_ns = recs.last().map_or(0, |r| r.at_nanos);
    let mut peak_live = 0u64;

    let mut roles: BTreeMap<u64, &'static str> = BTreeMap::new();
    let mut sent_at: BTreeMap<u32, u64> = BTreeMap::new();
    let mut sent_epoch: BTreeMap<u32, u32> = BTreeMap::new();
    let mut remulticast_at: BTreeMap<u32, u64> = BTreeMap::new();
    let mut settled: BTreeSet<u32> = BTreeSet::new();
    let mut active_epochs: BTreeSet<u32> = BTreeSet::new();
    let mut open: BTreeMap<(u64, u32), OpenRecovery> = BTreeMap::new();
    let mut timelines: Vec<RecoveryTimeline> = Vec::new();
    let mut requests_per_seq: BTreeMap<u32, u64> = BTreeMap::new();
    let mut dups_per_host_seq: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    let mut last_tx: BTreeMap<u64, u64> = BTreeMap::new();
    let mut max_silence: BTreeMap<u64, u64> = BTreeMap::new();
    let mut truncated_gap_spans = 0u64;
    let mut recovered = 0usize;
    let mut abandoned = 0usize;
    // Election forensics: leaders per term, the newest elected term, and
    // (host, seq) serves made under a term older than the newest. A
    // repair from such a serve that a receiver *accepts* is split-brain.
    let mut term_leaders: BTreeMap<u32, HostId> = BTreeMap::new();
    let mut max_term = 0u32;
    let mut stale_serves: BTreeMap<(u64, u32), u32> = BTreeMap::new();
    let mut split_brain: Vec<Anomaly> = Vec::new();
    let mut fenced_rejects = 0u64;

    for r in &recs {
        let h = r.host.raw();
        match &r.event {
            ProtocolEvent::RoleAnnounced { role } => {
                roles.insert(h, role);
            }
            ProtocolEvent::DataSent { seq, epoch } => {
                sent_at.entry(seq.raw()).or_insert(r.at_nanos);
                sent_epoch.entry(seq.raw()).or_insert(epoch.raw());
                let gap = r.at_nanos - last_tx.get(&h).copied().unwrap_or(r.at_nanos);
                let m = max_silence.entry(h).or_insert(0);
                *m = (*m).max(gap);
                last_tx.insert(h, r.at_nanos);
            }
            ProtocolEvent::HeartbeatSent { .. } => {
                let gap = r.at_nanos - last_tx.get(&h).copied().unwrap_or(r.at_nanos);
                let m = max_silence.entry(h).or_insert(0);
                *m = (*m).max(gap);
                last_tx.insert(h, r.at_nanos);
            }
            ProtocolEvent::GapDetected { first, last } => {
                let span = u64::from(last.distance_from(*first)) + 1;
                if span > cfg.max_gap_span {
                    truncated_gap_spans += 1;
                }
                for (i, seq) in first.iter_to(*last).enumerate() {
                    if i as u64 >= cfg.max_gap_span {
                        break;
                    }
                    open.entry((h, seq.raw())).or_insert(OpenRecovery {
                        detected_at: r.at_nanos,
                        first_nack_at: None,
                        nacks_sent: 0,
                        served_at: None,
                        served_by: None,
                        repaired_at: None,
                        source: RepairSource::Unknown,
                    });
                }
                peak_live = peak_live.max(open.len() as u64);
            }
            ProtocolEvent::NackSent {
                target,
                first,
                last,
                ..
            } => {
                let span = u64::from(last.distance_from(*first)) + 1;
                // The paper's implosion bound (§2.2.1, Figure 7) is on
                // requests reaching the *primary*: local NACKs absorbed
                // by a site secondary are the mechanism working, not
                // implosion, so only primary-bound requests count.
                let upstream = roles.get(&target.raw()).copied() == Some("logger_primary");
                for (i, seq) in first.iter_to(*last).enumerate() {
                    if i as u64 >= cfg.max_gap_span.min(span) {
                        break;
                    }
                    if upstream {
                        *requests_per_seq.entry(seq.raw()).or_insert(0) += 1;
                    }
                    if let Some(o) = open.get_mut(&(h, seq.raw())) {
                        o.first_nack_at.get_or_insert(r.at_nanos);
                        o.nacks_sent += 1;
                    }
                }
            }
            ProtocolEvent::RetransServed { seq, multicast, to } => {
                if *multicast {
                    for ((_, s), o) in open.iter_mut() {
                        if *s == seq.raw() {
                            o.served_at.get_or_insert(r.at_nanos);
                            o.served_by.get_or_insert(r.host);
                        }
                    }
                } else if let Some(o) = open.get_mut(&(to.raw(), seq.raw())) {
                    o.served_at.get_or_insert(r.at_nanos);
                    o.served_by.get_or_insert(r.host);
                }
            }
            ProtocolEvent::Remulticast { seq, .. } => {
                remulticast_at.entry(seq.raw()).or_insert(r.at_nanos);
                for ((_, s), o) in open.iter_mut() {
                    if *s == seq.raw() {
                        o.served_at.get_or_insert(r.at_nanos);
                        o.served_by.get_or_insert(r.host);
                    }
                }
            }
            ProtocolEvent::RepairReceived { seq, from, kind } => {
                if *kind == "retrans" {
                    if let Some(&stale) = stale_serves.get(&(from.raw(), seq.raw())) {
                        split_brain.push(Anomaly::SplitBrainServe {
                            seq: *seq,
                            by: *from,
                            term: stale,
                            current: max_term,
                        });
                    }
                }
                if let Some(o) = open.get_mut(&(h, seq.raw())) {
                    o.repaired_at = Some(r.at_nanos);
                    o.source = match *kind {
                        "heartbeat" => RepairSource::Heartbeat,
                        "retrans" => match roles.get(&from.raw()).copied() {
                            Some("logger_primary") => RepairSource::Primary,
                            Some("logger_secondary") => RepairSource::Secondary,
                            Some("logger_replica") => RepairSource::Replica,
                            Some("sender") => RepairSource::Sender,
                            _ => RepairSource::Unknown,
                        },
                        "data" => {
                            if remulticast_at
                                .get(&seq.raw())
                                .is_some_and(|&t| t <= r.at_nanos)
                            {
                                RepairSource::Remulticast
                            } else {
                                RepairSource::LateOriginal
                            }
                        }
                        _ => RepairSource::Unknown,
                    };
                }
            }
            ProtocolEvent::RepairDuplicate { seq, .. } => {
                *dups_per_host_seq.entry((h, seq.raw())).or_insert(0) += 1;
            }
            ProtocolEvent::Recovered { seq, latency_nanos } => {
                if let Some(o) = open.remove(&(h, seq.raw())) {
                    recovered += 1;
                    RecoveryReport::close(
                        &mut timelines,
                        r.host,
                        *seq,
                        o,
                        sent_at.get(&seq.raw()).copied(),
                        RecoveryOutcome::Recovered,
                        Some(*latency_nanos),
                    );
                }
            }
            ProtocolEvent::RecoveryAbandoned { seq } => {
                if let Some(o) = open.remove(&(h, seq.raw())) {
                    abandoned += 1;
                    RecoveryReport::close(
                        &mut timelines,
                        r.host,
                        *seq,
                        o,
                        sent_at.get(&seq.raw()).copied(),
                        RecoveryOutcome::Abandoned,
                        None,
                    );
                }
            }
            ProtocolEvent::Settled { seq, .. } => {
                settled.insert(seq.raw());
            }
            ProtocolEvent::EpochActive { epoch, .. } => {
                active_epochs.insert(epoch.raw());
            }
            ProtocolEvent::TermElected { term, leader } => {
                match term_leaders.get(term) {
                    Some(&prev) if prev != *leader => {
                        split_brain.push(Anomaly::TermConflict {
                            term: *term,
                            a: prev,
                            b: *leader,
                        });
                    }
                    Some(_) => {}
                    None => {
                        term_leaders.insert(*term, *leader);
                    }
                }
                max_term = max_term.max(*term);
            }
            ProtocolEvent::AuthorityServe { seq, term } if *term < max_term => {
                stale_serves.insert((h, seq.raw()), *term);
            }
            ProtocolEvent::StaleTermFenced { .. } => {
                fenced_rejects += 1;
            }
            _ => {}
        }
    }

    // Trailing silence: from the last transmission to end-of-run.
    for (&h, &t) in &last_tx {
        let m = max_silence.entry(h).or_insert(0);
        *m = (*m).max(end_ns.saturating_sub(t));
    }

    let mut anomalies: Vec<Anomaly> = Vec::new();

    // Unrecovered gaps: whatever is still open at end-of-run.
    let mut unrecovered = 0usize;
    let still_open: Vec<((u64, u32), OpenRecovery)> =
        std::mem::take(&mut open).into_iter().collect();
    for ((h, s), o) in still_open {
        unrecovered += 1;
        anomalies.push(Anomaly::UnrecoveredGap {
            host: HostId(h),
            seq: Seq(s),
            detected_at_nanos: o.detected_at,
        });
        RecoveryReport::close(
            &mut timelines,
            HostId(h),
            Seq(s),
            o,
            sent_at.get(&s).copied(),
            RecoveryOutcome::Unrecovered,
            None,
        );
    }

    // NACK implosion (§2.2.1: distributed logging bounds requests at
    // roughly one per site).
    let secondaries = roles.values().filter(|r| **r == "logger_secondary").count() as u64;
    let nack_bound = cfg
        .nack_fan_in_bound
        .or((secondaries > 0).then_some(secondaries + 2));
    let max_nack_fan_in = requests_per_seq.values().copied().max().unwrap_or(0);
    if let Some(bound) = nack_bound {
        for (&s, &n) in &requests_per_seq {
            if n > bound {
                anomalies.push(Anomaly::NackImplosion {
                    seq: Seq(s),
                    requests: n,
                    bound,
                });
            }
        }
    }

    // Duplicate repairs beyond the statistical-ACK expectation. The
    // bound is per receiver: one redundant copy each at many receivers
    // is the expected cost of re-multicast, while one receiver served
    // the same repair many times over means requests are not being
    // suppressed.
    let mut duplicate_repairs = 0u64;
    for (&(host, s), &n) in &dups_per_host_seq {
        duplicate_repairs += n;
        if n > cfg.duplicate_bound {
            anomalies.push(Anomaly::ExcessDuplicateRepairs {
                host: HostId(host),
                seq: Seq(s),
                duplicates: n,
                bound: cfg.duplicate_bound,
            });
        }
    }

    // Heartbeat silence beyond h_max (with 1.5x slack for the last
    // in-flight interval).
    if let Some(h_max) = cfg.h_max_nanos {
        let bound = h_max + h_max / 2;
        for (&h, &gap) in &max_silence {
            if gap > bound {
                anomalies.push(Anomaly::HeartbeatSilence {
                    host: HostId(h),
                    gap_nanos: gap,
                    h_max_nanos: h_max,
                });
            }
        }
    }

    // Stalled settlements: data in an active epoch that never settled
    // (ignoring sends within the trailing grace window).
    for (&s, &e) in &sent_epoch {
        if !active_epochs.contains(&e) || settled.contains(&s) {
            continue;
        }
        let at = sent_at.get(&s).copied().unwrap_or(0);
        if at + cfg.settle_slack_nanos < end_ns {
            anomalies.push(Anomaly::StalledSettlement {
                seq: Seq(s),
                sent_at_nanos: at,
            });
        }
    }

    // Split-brain detections (term conflicts and accepted stale serves),
    // in stream order, after every other detector — the streaming
    // analyzer appends them at the same position for parity.
    anomalies.append(&mut split_brain);

    // Stage histograms over recovered timelines.
    let mut detection = Histogram::default();
    let mut request = Histogram::default();
    let mut serve = Histogram::default();
    let mut return_leg = Histogram::default();
    let mut total = Histogram::default();
    let mut sources: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut telescoping = 0usize;
    for t in &timelines {
        if t.outcome != RecoveryOutcome::Recovered {
            continue;
        }
        if let Some(n) = t.detection_nanos() {
            detection.record(n);
        }
        if let Some(n) = t.request_nanos() {
            request.record(n);
        }
        if let Some(n) = t.serve_nanos() {
            serve.record(n);
        }
        if let Some(n) = t.return_nanos() {
            return_leg.record(n);
        }
        if let Some(n) = t.recovery_latency_nanos {
            total.record(n);
        }
        *sources.entry(t.source.label()).or_insert(0) += 1;
        if t.stages_telescope() {
            telescoping += 1;
        }
    }

    let (detection, request, serve, return_leg, total) = (
        detection.snapshot(),
        request.snapshot(),
        serve.snapshot(),
        return_leg.snapshot(),
        total.snapshot(),
    );

    // What materializing the whole capture cost: the record vector and
    // sorted-ref index dominate, then timelines and exact histograms.
    let hist_samples =
        (detection.count() + request.count() + serve.count() + return_leg.count() + total.count())
            as u64;
    let peak_resident_bytes = records.len() as u64
        * (std::mem::size_of::<TraceRecord>() as u64 + 8)
        + peak_live * open_entry_bytes()
        + timelines.len() as u64 * std::mem::size_of::<RecoveryTimeline>() as u64
        + hist_samples * 8;

    RecoveryReport {
        timelines,
        recovered,
        abandoned,
        unrecovered,
        detection,
        request,
        serve,
        return_leg,
        total,
        sources,
        duplicate_repairs,
        max_nack_fan_in,
        telescoping,
        truncated_gap_spans,
        fenced_rejects,
        anomalies,
        stream: StreamStats {
            streamed: false,
            peak_live_timelines: peak_live,
            peak_resident_bytes,
            force_evicted: 0,
            aged_out: 0,
            out_of_order,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use lbrm_wire::EpochId;

    const SENDER: HostId = HostId(1);
    const PRIMARY: HostId = HostId(2);
    const RX: HostId = HostId(40);

    fn rec(at_ms: u64, host: HostId, event: ProtocolEvent) -> TraceRecord {
        TraceRecord {
            at_nanos: at_ms * 1_000_000,
            host,
            event,
        }
    }

    fn happy_path() -> Vec<TraceRecord> {
        vec![
            rec(0, SENDER, ProtocolEvent::RoleAnnounced { role: "sender" }),
            rec(
                0,
                PRIMARY,
                ProtocolEvent::RoleAnnounced {
                    role: "logger_primary",
                },
            ),
            rec(0, RX, ProtocolEvent::RoleAnnounced { role: "receiver" }),
            rec(
                10,
                SENDER,
                ProtocolEvent::DataSent {
                    seq: Seq(1),
                    epoch: EpochId(0),
                },
            ),
            rec(
                20,
                SENDER,
                ProtocolEvent::DataSent {
                    seq: Seq(2),
                    epoch: EpochId(0),
                },
            ),
            // seq 1 lost; gap detected when seq 2 arrives.
            rec(
                25,
                RX,
                ProtocolEvent::GapDetected {
                    first: Seq(1),
                    last: Seq(1),
                },
            ),
            rec(
                55,
                RX,
                ProtocolEvent::NackSent {
                    target: PRIMARY,
                    packets: 1,
                    first: Seq(1),
                    last: Seq(1),
                },
            ),
            rec(
                60,
                PRIMARY,
                ProtocolEvent::NackReceived {
                    from: RX,
                    packets: 1,
                },
            ),
            rec(
                60,
                PRIMARY,
                ProtocolEvent::RetransServed {
                    seq: Seq(1),
                    multicast: false,
                    to: RX,
                },
            ),
            rec(
                65,
                RX,
                ProtocolEvent::RepairReceived {
                    seq: Seq(1),
                    from: PRIMARY,
                    kind: "retrans",
                },
            ),
            rec(
                65,
                RX,
                ProtocolEvent::Recovered {
                    seq: Seq(1),
                    latency_nanos: 40 * 1_000_000,
                },
            ),
        ]
    }

    #[test]
    fn happy_path_timeline_is_exact_and_clean() {
        let report = analyze(&happy_path(), &AnalyzeConfig::default());
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.unrecovered, 0);
        let t = &report.timelines[0];
        assert_eq!(t.host, RX);
        assert_eq!(t.seq, Seq(1));
        assert_eq!(t.sent_at_nanos, Some(10 * 1_000_000));
        assert_eq!(t.detection_nanos(), Some(15 * 1_000_000));
        assert_eq!(t.request_nanos(), Some(30 * 1_000_000));
        assert_eq!(t.serve_nanos(), Some(5 * 1_000_000));
        assert_eq!(t.return_nanos(), Some(5 * 1_000_000));
        assert_eq!(t.source, RepairSource::Primary);
        assert_eq!(t.served_by, Some(PRIMARY));
        assert!(t.stages_telescope());
        assert_eq!(report.telescoping, 1);
        assert_eq!(report.sources.get("primary"), Some(&1));
        assert_eq!(report.max_nack_fan_in, 1);
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"primary\":1"));
        assert!(report.render().contains("repair sources"));
    }

    #[test]
    fn unrecovered_gap_is_flagged() {
        let mut records = happy_path();
        records.truncate(records.len() - 2); // drop repair + recovered
        let report = analyze(&records, &AnalyzeConfig::default());
        assert_eq!(report.unrecovered, 1);
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.anomalies[0].kind(), "unrecovered_gap");
        assert!(!report.is_clean());
        assert!(report.to_json().contains("\"clean\":false"));
    }

    #[test]
    fn nack_implosion_detected_above_bound() {
        let mut records = happy_path();
        // 40 distinct hosts each NACK seq 1: far above any site bound.
        for i in 0..40u64 {
            records.push(rec(
                30 + i,
                HostId(100 + i),
                ProtocolEvent::NackSent {
                    target: PRIMARY,
                    packets: 1,
                    first: Seq(1),
                    last: Seq(1),
                },
            ));
        }
        let cfg = AnalyzeConfig {
            nack_fan_in_bound: Some(5),
            ..AnalyzeConfig::default()
        };
        let report = analyze(&records, &cfg);
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind() == "nack_implosion"));
        assert_eq!(report.max_nack_fan_in, 41);
    }

    #[test]
    fn duplicate_repairs_and_heartbeat_silence_detected() {
        let mut records = happy_path();
        for _ in 0..5 {
            records.push(rec(
                70,
                RX,
                ProtocolEvent::RepairDuplicate {
                    seq: Seq(1),
                    from: PRIMARY,
                },
            ));
        }
        // Sender silent from t=20ms until t=200s.
        records.push(rec(200_000, RX, ProtocolEvent::FreshnessLost));
        let report = analyze(&records, &AnalyzeConfig::default());
        assert_eq!(report.duplicate_repairs, 5);
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind() == "excess_duplicate_repairs"));
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind() == "heartbeat_silence"));
    }

    #[test]
    fn stalled_settlement_detected_only_in_active_epochs() {
        let mut records = happy_path();
        records.push(rec(
            5,
            SENDER,
            ProtocolEvent::EpochActive {
                epoch: EpochId(0),
                ackers: 2,
            },
        ));
        records.push(rec(100_000, RX, ProtocolEvent::FreshnessLost));
        let cfg = AnalyzeConfig {
            h_max_nanos: None,
            ..AnalyzeConfig::default()
        };
        let report = analyze(&records, &cfg);
        // Both sent packets are in epoch 0 (now active) and unsettled.
        assert_eq!(
            report
                .anomalies
                .iter()
                .filter(|a| a.kind() == "stalled_settlement")
                .count(),
            2
        );
        // Settling them clears the anomaly.
        records.push(rec(
            90,
            SENDER,
            ProtocolEvent::Settled {
                seq: Seq(1),
                complete: true,
            },
        ));
        records.push(rec(
            90,
            SENDER,
            ProtocolEvent::Settled {
                seq: Seq(2),
                complete: false,
            },
        ));
        let report = analyze(&records, &cfg);
        assert!(report.is_clean(), "{:?}", report.anomalies);
    }

    #[test]
    fn split_brain_serve_detected_and_fenced_rejects_counted() {
        let mut records = happy_path();
        // Term 2 elects a new leader; the old primary keeps serving
        // under its stale belief. A *rejected* stale serve is clean.
        let new_leader = HostId(3);
        records.push(rec(
            70,
            SENDER,
            ProtocolEvent::TermElected {
                term: 2,
                leader: new_leader,
            },
        ));
        records.push(rec(
            80,
            PRIMARY,
            ProtocolEvent::AuthorityServe {
                seq: Seq(9),
                term: 1,
            },
        ));
        records.push(rec(
            85,
            RX,
            ProtocolEvent::StaleTermFenced {
                from: PRIMARY,
                term: 2,
            },
        ));
        let report = analyze(&records, &AnalyzeConfig::default());
        assert_eq!(report.fenced_rejects, 1);
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert!(report.to_json().contains("\"fenced_rejects\":1"));

        // A receiver accepting the stale serve is split-brain.
        records.push(rec(
            90,
            HostId(41),
            ProtocolEvent::RepairReceived {
                seq: Seq(9),
                from: PRIMARY,
                kind: "retrans",
            },
        ));
        let report = analyze(&records, &AnalyzeConfig::default());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind() == "split_brain_serve"));

        // Two leaders announced for one term is flagged outright.
        records.push(rec(
            95,
            SENDER,
            ProtocolEvent::TermElected {
                term: 2,
                leader: PRIMARY,
            },
        ));
        let report = analyze(&records, &AnalyzeConfig::default());
        assert!(report.anomalies.iter().any(|a| a.kind() == "term_conflict"));
    }

    #[test]
    fn remulticast_and_heartbeat_repairs_attributed() {
        let records = vec![
            rec(0, SENDER, ProtocolEvent::RoleAnnounced { role: "sender" }),
            rec(
                10,
                SENDER,
                ProtocolEvent::DataSent {
                    seq: Seq(1),
                    epoch: EpochId(0),
                },
            ),
            rec(
                25,
                RX,
                ProtocolEvent::GapDetected {
                    first: Seq(1),
                    last: Seq(2),
                },
            ),
            rec(
                40,
                SENDER,
                ProtocolEvent::Remulticast {
                    seq: Seq(1),
                    missing: 1,
                },
            ),
            rec(
                45,
                RX,
                ProtocolEvent::RepairReceived {
                    seq: Seq(1),
                    from: SENDER,
                    kind: "data",
                },
            ),
            rec(
                45,
                RX,
                ProtocolEvent::Recovered {
                    seq: Seq(1),
                    latency_nanos: 20_000_000,
                },
            ),
            rec(
                50,
                RX,
                ProtocolEvent::RepairReceived {
                    seq: Seq(2),
                    from: SENDER,
                    kind: "heartbeat",
                },
            ),
            rec(
                50,
                RX,
                ProtocolEvent::Recovered {
                    seq: Seq(2),
                    latency_nanos: 25_000_000,
                },
            ),
        ];
        let cfg = AnalyzeConfig {
            h_max_nanos: None,
            ..AnalyzeConfig::default()
        };
        let report = analyze(&records, &cfg);
        assert_eq!(report.sources.get("remulticast"), Some(&1));
        assert_eq!(report.sources.get("heartbeat"), Some(&1));
        assert!(report.is_clean(), "{:?}", report.anomalies);
    }

    #[test]
    fn json_lines_round_trip_through_the_parser() {
        let samples = vec![
            ProtocolEvent::DataSent {
                seq: Seq(7),
                epoch: EpochId(3),
            },
            ProtocolEvent::HeartbeatSent {
                seq: Seq(7),
                hb_index: 2,
            },
            ProtocolEvent::GapDetected {
                first: Seq(1),
                last: Seq(4),
            },
            ProtocolEvent::NackSent {
                target: PRIMARY,
                packets: 3,
                first: Seq(1),
                last: Seq(4),
            },
            ProtocolEvent::NackReceived {
                from: RX,
                packets: 3,
            },
            ProtocolEvent::RetransServed {
                seq: Seq(2),
                multicast: true,
                to: RX,
            },
            ProtocolEvent::Remulticast {
                seq: Seq(2),
                missing: 4,
            },
            ProtocolEvent::AckerVolunteered { epoch: EpochId(1) },
            ProtocolEvent::EpochActive {
                epoch: EpochId(1),
                ackers: 5,
            },
            ProtocolEvent::Settled {
                seq: Seq(2),
                complete: false,
            },
            ProtocolEvent::TWaitUpdated {
                t_wait_nanos: 12345,
            },
            ProtocolEvent::CongestionSuspected { streak: 3 },
            ProtocolEvent::Recovered {
                seq: Seq(2),
                latency_nanos: 999,
            },
            ProtocolEvent::RecoveryAbandoned { seq: Seq(9) },
            ProtocolEvent::RepairReceived {
                seq: Seq(2),
                from: PRIMARY,
                kind: "retrans",
            },
            ProtocolEvent::RepairDuplicate {
                seq: Seq(2),
                from: PRIMARY,
            },
            ProtocolEvent::FreshnessLost,
            ProtocolEvent::FreshnessRestored,
            ProtocolEvent::BufferReleased { up_to: Seq(5) },
            ProtocolEvent::PacketLogged { seq: Seq(5) },
            ProtocolEvent::PrimaryUnresponsive { primary: PRIMARY },
            ProtocolEvent::FailoverPromoted {
                new_primary: PRIMARY,
            },
            ProtocolEvent::TermElected {
                term: 2,
                leader: PRIMARY,
            },
            ProtocolEvent::StaleTermFenced {
                from: PRIMARY,
                term: 2,
            },
            ProtocolEvent::AuthorityServe {
                seq: Seq(5),
                term: 1,
            },
            ProtocolEvent::RoleAnnounced {
                role: "logger_secondary",
            },
            ProtocolEvent::NetPacket {
                kind: "repl-update",
                multicast: false,
                copies: 1,
            },
        ];
        for (i, ev) in samples.into_iter().enumerate() {
            let line = ev.to_json(i as u64 * 10, HostId(i as u64));
            let parsed =
                parse_json_line(&line).unwrap_or_else(|| panic!("line failed to parse: {line}"));
            assert_eq!(parsed.at_nanos, i as u64 * 10);
            assert_eq!(parsed.host, HostId(i as u64));
            assert_eq!(parsed.event, ev, "round-trip mismatch for {line}");
        }
        // Floating-point p_ack round-trips through the float arm.
        let line = ProtocolEvent::AckerSelected {
            epoch: EpochId(2),
            p_ack: 0.125,
        }
        .to_json(5, HostId(1));
        let parsed = parse_json_line(&line).unwrap();
        assert!(matches!(
            parsed.event,
            ProtocolEvent::AckerSelected { p_ack, .. } if (p_ack - 0.125).abs() < 1e-12
        ));
        let (records, skipped) = parse_json_lines("\n{\"bad\n\n");
        assert!(records.is_empty());
        assert_eq!(skipped, 1);
    }

    #[test]
    fn collector_and_fanout_sinks_cooperate() {
        let collector = Arc::new(CollectorSink::default());
        let counts = Arc::new(crate::CountingSink::default());
        let fan = FanoutSink::new(vec![collector.clone(), counts.clone()]);
        let t = Tracer::to(Arc::new(fan)).with_host(RX);
        t.emit(5, || ProtocolEvent::FreshnessLost);
        assert_eq!(collector.len(), 1);
        assert!(!collector.is_empty());
        assert_eq!(counts.count("freshness_lost"), 1);
        let taken = collector.take();
        assert_eq!(taken[0].host, RX);
        assert!(collector.is_empty());
    }
}
