//! Streaming recovery forensics: the [`OnlineAnalyzer`] correlates a
//! [`ProtocolEvent`] stream *one record at a time* in bounded memory.
//!
//! The batch [`analyze`](crate::analyze::analyze) materializes every
//! parsed record plus every per-`(host, seq)` timeline before it can
//! say anything — for the million-event captures a thousands-of-sites
//! DIS run produces, that blows up exactly where the forensics layer
//! matters most. The streaming correlator instead:
//!
//! * holds only the **open** timelines, evicting each one the moment it
//!   closes (repair received and the `Recovered`/`RecoveryAbandoned`
//!   settlement observed) or ages out past a configurable horizon;
//! * folds stage latencies straight into fixed-size
//!   [`StreamingHistogram`]s (power-of-two buckets + a bounded,
//!   deterministically seeded reservoir), never a vector of samples;
//! * retains closed timelines in a bounded reservoir (close order is
//!   preserved among the survivors);
//! * meters its own resident state — live timelines and approximate
//!   bytes — as a first-class [`StreamStats`] metric in the final
//!   [`RecoveryReport`], which is what the `trace_doctor --mem-budget`
//!   CI gate asserts on.
//!
//! **Fidelity contract.** On a time-ordered stream, with no live-cap
//! and no horizon, the streaming report is *identical* to the batch
//! one — same anomaly set in the same order, same counts, same
//! repair-source breakdown, same telescoping stage latencies — up to
//! reservoir sampling: while the number of recoveries stays at or below
//! the reservoir capacities, even the histograms and retained timelines
//! match sample-for-sample (counts, means and maxima stay exact
//! beyond that). The batch analyzer stays as the differential
//! reference; `tests/forensics_stream_sim.rs` pins the equivalence on
//! seeded DIS and lossy-WAN captures with randomized loss patterns.
//!
//! Divergences are explicit, never silent:
//!
//! * a **horizon** closes an open timeline that outlived it as
//!   `Unrecovered` (with the matching unrecovered-gap anomaly) —
//!   "recovered eventually, after the horizon" is reported as a
//!   failure, which is the right call for a live monitor;
//! * a **live-timeline cap** force-evicts the oldest open timeline;
//!   its fate is unknown, so it is only counted in
//!   [`StreamStats::force_evicted`] (no anomaly, no timeline);
//! * out-of-order records are correlated as they arrive (the batch
//!   analyzer sorts first) and counted in
//!   [`StreamStats::out_of_order`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use lbrm_wire::{HostId, Seq};

use crate::analyze::{
    open_entry_bytes, AnalyzeConfig, Anomaly, OpenRecovery, RecoveryOutcome, RecoveryReport,
    RecoveryTimeline, RepairSource, StreamStats, TraceRecord,
};
use crate::{ProtocolEvent, StreamingHistogram, TraceSink};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tunables for the [`OnlineAnalyzer`]. The defaults reproduce the
/// batch analyzer exactly (no cap, no horizon) with reservoirs big
/// enough that sim-scale runs are never sampled.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// The correlation/anomaly tunables shared with the batch analyzer.
    pub analyze: AnalyzeConfig,
    /// Hard cap on concurrently open timelines; the oldest is
    /// force-evicted (counted, not flagged) when exceeded. `None` = no
    /// cap (the `--mem-budget` gate then measures the true peak).
    pub max_live_timelines: Option<usize>,
    /// Age-out horizon: an open timeline whose loss was detected more
    /// than this many nanoseconds before the current record is closed
    /// as unrecovered. `None` = open timelines live to end-of-stream.
    pub horizon_nanos: Option<u64>,
    /// Raw-sample reservoir capacity per stage histogram.
    pub stage_reservoir: usize,
    /// Reservoir capacity for retained closed [`RecoveryTimeline`]s.
    pub timeline_reservoir: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            analyze: AnalyzeConfig::default(),
            max_live_timelines: None,
            horizon_nanos: None,
            stage_reservoir: 4096,
            timeline_reservoir: 4096,
        }
    }
}

/// Bounded reservoir of closed timelines. Under capacity it is exactly
/// the close-order vector the batch analyzer builds; over capacity,
/// Algorithm R keeps a uniform sample and close order is restored among
/// the survivors at the end.
#[derive(Debug, Clone)]
struct TimelineReservoir {
    kept: Vec<(u64, RecoveryTimeline)>,
    capacity: usize,
    seen: u64,
    rng: u64,
}

impl TimelineReservoir {
    fn new(capacity: usize) -> Self {
        TimelineReservoir {
            kept: Vec::new(),
            capacity: capacity.max(1),
            seen: 0,
            rng: 0x7135_11FE_D00D_5EED,
        }
    }

    fn offer(&mut self, t: RecoveryTimeline) {
        if (self.seen as usize) < self.capacity {
            self.kept.push((self.seen, t));
        } else {
            let j = splitmix64(&mut self.rng) % (self.seen + 1);
            if (j as usize) < self.capacity {
                self.kept[j as usize] = (self.seen, t);
            }
        }
        self.seen += 1;
    }

    fn into_vec(mut self) -> Vec<RecoveryTimeline> {
        self.kept.sort_by_key(|(i, _)| *i);
        self.kept.into_iter().map(|(_, t)| t).collect()
    }
}

/// The streaming correlator: feed it records via [`push`]
/// (or through the [`OnlineAnalyzerSink`] adapter / a JSONL reader),
/// then [`finish`](OnlineAnalyzer::finish) it into a
/// [`RecoveryReport`].
///
/// [`push`]: OnlineAnalyzer::push
///
/// The analyzer is `Clone` so a live monitor can take a *provisional*
/// snapshot mid-stream (`analyzer.clone().finish()`) without disturbing
/// the ongoing correlation — see [`crate::doctor`].
#[derive(Debug, Clone)]
pub struct OnlineAnalyzer {
    cfg: OnlineConfig,
    // Correlation state (mirrors the batch analyzer's loop state).
    roles: BTreeMap<u64, &'static str>,
    sent_at: BTreeMap<u32, u64>,
    sent_epoch: BTreeMap<u32, u32>,
    remulticast_at: BTreeMap<u32, u64>,
    settled: BTreeSet<u32>,
    active_epochs: BTreeSet<u32>,
    open: BTreeMap<(u64, u32), OpenRecovery>,
    /// Age index over `open`: `(detected_at, host, seq)` — the oldest
    /// open timeline is `first()`, so cap and horizon evictions are
    /// O(log live), never a scan.
    by_age: BTreeSet<(u64, u64, u32)>,
    requests_per_seq: BTreeMap<u32, u64>,
    dups_per_host_seq: BTreeMap<(u64, u32), u64>,
    last_tx: BTreeMap<u64, u64>,
    max_silence: BTreeMap<u64, u64>,
    truncated_gap_spans: u64,
    // Split-brain detector state (mirrors the batch analyzer).
    term_leaders: BTreeMap<u32, HostId>,
    max_term: u32,
    stale_serves: BTreeMap<(u64, u32), u32>,
    /// Term conflicts and accepted stale serves, in stream order. Kept
    /// out of [`basis`](Self::basis) (like every end-of-stream
    /// detector) and appended after stalled settlements in
    /// [`finish`](Self::finish), matching the batch anomaly order.
    split_brain: Vec<Anomaly>,
    fenced_rejects: u64,
    // Folded results (what the batch analyzer defers to the end).
    recovered: usize,
    abandoned: usize,
    unrecovered: usize,
    detection: StreamingHistogram,
    request: StreamingHistogram,
    serve: StreamingHistogram,
    return_leg: StreamingHistogram,
    total: StreamingHistogram,
    sources: BTreeMap<&'static str, u64>,
    telescoping: usize,
    timelines: TimelineReservoir,
    /// Unrecovered-gap anomalies raised by horizon evictions, in
    /// eviction order (end-of-stream gaps follow in key order, matching
    /// the batch analyzer's anomaly ordering when no horizon is set).
    gap_anomalies: Vec<Anomaly>,
    // Stream bookkeeping.
    records: u64,
    last_at: u64,
    end_ns: u64,
    out_of_order: u64,
    peak_live: u64,
    peak_bytes: u64,
    force_evicted: u64,
    aged_out: u64,
}

impl OnlineAnalyzer {
    /// A fresh analyzer with the given tunables.
    pub fn new(cfg: OnlineConfig) -> Self {
        let stage = cfg.stage_reservoir;
        let tl = cfg.timeline_reservoir;
        OnlineAnalyzer {
            cfg,
            roles: BTreeMap::new(),
            sent_at: BTreeMap::new(),
            sent_epoch: BTreeMap::new(),
            remulticast_at: BTreeMap::new(),
            settled: BTreeSet::new(),
            active_epochs: BTreeSet::new(),
            open: BTreeMap::new(),
            by_age: BTreeSet::new(),
            requests_per_seq: BTreeMap::new(),
            dups_per_host_seq: BTreeMap::new(),
            last_tx: BTreeMap::new(),
            max_silence: BTreeMap::new(),
            truncated_gap_spans: 0,
            term_leaders: BTreeMap::new(),
            max_term: 0,
            stale_serves: BTreeMap::new(),
            split_brain: Vec::new(),
            fenced_rejects: 0,
            recovered: 0,
            abandoned: 0,
            unrecovered: 0,
            detection: StreamingHistogram::new(stage),
            request: StreamingHistogram::new(stage),
            serve: StreamingHistogram::new(stage),
            return_leg: StreamingHistogram::new(stage),
            total: StreamingHistogram::new(stage),
            sources: BTreeMap::new(),
            telescoping: 0,
            timelines: TimelineReservoir::new(tl),
            gap_anomalies: Vec::new(),
            records: 0,
            last_at: 0,
            end_ns: 0,
            out_of_order: 0,
            peak_live: 0,
            peak_bytes: 0,
            force_evicted: 0,
            aged_out: 0,
        }
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Currently open (live) timelines.
    pub fn live_timelines(&self) -> usize {
        self.open.len()
    }

    /// Most timelines ever open at once.
    pub fn peak_live_timelines(&self) -> u64 {
        self.peak_live
    }

    /// Approximate bytes of resident correlation state right now: live
    /// timelines + their age index, the per-seq/per-host aggregate
    /// maps, the stage histograms and the retained-timeline reservoir.
    pub fn approx_resident_bytes(&self) -> u64 {
        const NODE: u64 = 32; // BTree node overhead per entry, roughly.
        self.open.len() as u64 * open_entry_bytes()
            + self.by_age.len() as u64 * (24 + NODE)
            + (self.roles.len() + self.last_tx.len() + self.max_silence.len()) as u64 * (16 + NODE)
            + (self.sent_at.len()
                + self.sent_epoch.len()
                + self.remulticast_at.len()
                + self.requests_per_seq.len()) as u64
                * (12 + NODE)
            + (self.settled.len() + self.active_epochs.len()) as u64 * (4 + NODE)
            + self.dups_per_host_seq.len() as u64 * (20 + NODE)
            + self.detection.approx_bytes()
            + self.request.approx_bytes()
            + self.serve.approx_bytes()
            + self.return_leg.approx_bytes()
            + self.total.approx_bytes()
            + self.timelines.kept.len() as u64
                * (std::mem::size_of::<RecoveryTimeline>() as u64 + 8)
            + self.gap_anomalies.len() as u64 * std::mem::size_of::<Anomaly>() as u64
    }

    /// Highest resident-byte estimate observed so far.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Newest stream timestamp observed so far (nanoseconds).
    pub fn end_nanos(&self) -> u64 {
        self.end_ns
    }

    /// The tunables this analyzer was built with.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// The *committed* monotone slice of the folded state — everything
    /// [`finish`](Self::finish) can only ever add to, never rewrite.
    /// This is what [`crate::doctor::ReportDelta`]s diff between ticks:
    /// still-open timelines and end-of-stream detectors contribute
    /// nothing here, so the sequence of basis values over a stream is
    /// coordinate-wise monotone and delta folding telescopes exactly.
    pub fn basis(&self) -> crate::doctor::ReportBasis {
        crate::doctor::ReportBasis {
            recovered: self.recovered as u64,
            abandoned: self.abandoned as u64,
            unrecovered: self.unrecovered as u64,
            telescoping: self.telescoping as u64,
            duplicate_repairs: self.dups_per_host_seq.values().sum(),
            max_nack_fan_in: self.requests_per_seq.values().copied().max().unwrap_or(0),
            truncated_gap_spans: self.truncated_gap_spans,
            stage_counts: [
                self.detection.count(),
                self.request.count(),
                self.serve.count(),
                self.return_leg.count(),
                self.total.count(),
            ],
            stage_max_nanos: [
                self.detection.max_nanos(),
                self.request.max_nanos(),
                self.serve.max_nanos(),
                self.return_leg.max_nanos(),
                self.total.max_nanos(),
            ],
            sources: self.sources.clone(),
            anomalies: self.gap_anomalies.clone(),
            force_evicted: self.force_evicted,
            aged_out: self.aged_out,
            out_of_order: self.out_of_order,
        }
    }

    /// The `limit` oldest still-open recoveries, oldest first — the
    /// bounded listing behind the admin surface's `/timelines/live`.
    pub fn live_oldest(&self, limit: usize) -> Vec<LiveGap> {
        self.by_age
            .iter()
            .take(limit)
            .map(|&(at, h, s)| {
                let o = &self.open[&(h, s)];
                LiveGap {
                    host: HostId(h),
                    seq: Seq(s),
                    detected_at_nanos: at,
                    nacks_sent: o.nacks_sent,
                    served: o.served_at.is_some(),
                    repaired: o.repaired_at.is_some(),
                }
            })
            .collect()
    }

    fn close_timeline(
        &mut self,
        host: HostId,
        seq: Seq,
        o: OpenRecovery,
        outcome: RecoveryOutcome,
        latency: Option<u64>,
    ) {
        let t = RecoveryTimeline {
            host,
            seq,
            sent_at_nanos: self.sent_at.get(&seq.raw()).copied(),
            detected_at_nanos: o.detected_at,
            first_nack_at_nanos: o.first_nack_at,
            nacks_sent: o.nacks_sent,
            served_at_nanos: o.served_at,
            served_by: o.served_by,
            repaired_at_nanos: o.repaired_at,
            source: o.source,
            outcome,
            recovery_latency_nanos: latency,
        };
        if t.outcome == RecoveryOutcome::Recovered {
            if let Some(n) = t.detection_nanos() {
                self.detection.record(n);
            }
            if let Some(n) = t.request_nanos() {
                self.request.record(n);
            }
            if let Some(n) = t.serve_nanos() {
                self.serve.record(n);
            }
            if let Some(n) = t.return_nanos() {
                self.return_leg.record(n);
            }
            if let Some(n) = t.recovery_latency_nanos {
                self.total.record(n);
            }
            *self.sources.entry(t.source.label()).or_insert(0) += 1;
            if t.stages_telescope() {
                self.telescoping += 1;
            }
        }
        self.timelines.offer(t);
    }

    /// Removes the oldest open timeline and returns it, if any.
    fn evict_oldest(&mut self) -> Option<(HostId, Seq, OpenRecovery)> {
        let &(at, h, s) = self.by_age.first()?;
        self.by_age.remove(&(at, h, s));
        let o = self
            .open
            .remove(&(h, s))
            .expect("age index entry must have an open timeline");
        Some((HostId(h), Seq(s), o))
    }

    fn open_timeline(&mut self, h: u64, seq: u32, at: u64) {
        if let std::collections::btree_map::Entry::Vacant(e) = self.open.entry((h, seq)) {
            e.insert(OpenRecovery {
                detected_at: at,
                first_nack_at: None,
                nacks_sent: 0,
                served_at: None,
                served_by: None,
                repaired_at: None,
                source: RepairSource::Unknown,
            });
            self.by_age.insert((at, h, seq));
            // Enforce the live-timeline cap immediately, so the peak
            // the budget gate asserts on truly never exceeds it.
            if let Some(cap) = self.cfg.max_live_timelines {
                while self.open.len() > cap.max(1) {
                    let _ = self.evict_oldest().expect("over cap implies non-empty");
                    self.force_evicted += 1;
                }
            }
            self.peak_live = self.peak_live.max(self.open.len() as u64);
        }
    }

    /// Consumes one record. Records are expected in timestamp order
    /// (what every sink and JSONL capture produces); out-of-order
    /// records are still correlated but counted in
    /// [`StreamStats::out_of_order`].
    pub fn push(&mut self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        self.records += 1;
        if at_nanos < self.last_at {
            self.out_of_order += 1;
        }
        self.last_at = at_nanos;
        self.end_ns = self.end_ns.max(at_nanos);
        let cfg = self.cfg.analyze.clone();
        let h = host.raw();

        // Horizon age-out: close everything that has been open longer
        // than the horizon before correlating the new record.
        if let Some(horizon) = self.cfg.horizon_nanos {
            let cutoff = at_nanos.saturating_sub(horizon);
            while self
                .by_age
                .first()
                .is_some_and(|&(detected, _, _)| detected < cutoff)
            {
                let (eh, es, o) = self.evict_oldest().expect("checked non-empty");
                self.aged_out += 1;
                self.unrecovered += 1;
                self.gap_anomalies.push(Anomaly::UnrecoveredGap {
                    host: eh,
                    seq: es,
                    detected_at_nanos: o.detected_at,
                });
                self.close_timeline(eh, es, o, RecoveryOutcome::Unrecovered, None);
            }
        }

        match event {
            ProtocolEvent::RoleAnnounced { role } => {
                self.roles.insert(h, role);
            }
            ProtocolEvent::DataSent { seq, epoch } => {
                self.sent_at.entry(seq.raw()).or_insert(at_nanos);
                self.sent_epoch.entry(seq.raw()).or_insert(epoch.raw());
                // saturating: unlike the batch analyzer we never sort,
                // so an out-of-order record must not underflow.
                let gap =
                    at_nanos.saturating_sub(self.last_tx.get(&h).copied().unwrap_or(at_nanos));
                let m = self.max_silence.entry(h).or_insert(0);
                *m = (*m).max(gap);
                self.last_tx.insert(h, at_nanos);
            }
            ProtocolEvent::HeartbeatSent { .. } => {
                let gap =
                    at_nanos.saturating_sub(self.last_tx.get(&h).copied().unwrap_or(at_nanos));
                let m = self.max_silence.entry(h).or_insert(0);
                *m = (*m).max(gap);
                self.last_tx.insert(h, at_nanos);
            }
            ProtocolEvent::GapDetected { first, last } => {
                let span = u64::from(last.distance_from(*first)) + 1;
                if span > cfg.max_gap_span {
                    self.truncated_gap_spans += 1;
                }
                for (i, seq) in first.iter_to(*last).enumerate() {
                    if i as u64 >= cfg.max_gap_span {
                        break;
                    }
                    self.open_timeline(h, seq.raw(), at_nanos);
                }
            }
            ProtocolEvent::NackSent {
                target,
                first,
                last,
                ..
            } => {
                let span = u64::from(last.distance_from(*first)) + 1;
                // Same primary-bound rule as the batch analyzer: NACKs
                // absorbed by site secondaries are the mechanism
                // working, not implosion.
                let upstream = self.roles.get(&target.raw()).copied() == Some("logger_primary");
                for (i, seq) in first.iter_to(*last).enumerate() {
                    if i as u64 >= cfg.max_gap_span.min(span) {
                        break;
                    }
                    if upstream {
                        *self.requests_per_seq.entry(seq.raw()).or_insert(0) += 1;
                    }
                    if let Some(o) = self.open.get_mut(&(h, seq.raw())) {
                        o.first_nack_at.get_or_insert(at_nanos);
                        o.nacks_sent += 1;
                    }
                }
            }
            ProtocolEvent::RetransServed { seq, multicast, to } => {
                if *multicast {
                    for ((_, s), o) in self.open.iter_mut() {
                        if *s == seq.raw() {
                            o.served_at.get_or_insert(at_nanos);
                            o.served_by.get_or_insert(host);
                        }
                    }
                } else if let Some(o) = self.open.get_mut(&(to.raw(), seq.raw())) {
                    o.served_at.get_or_insert(at_nanos);
                    o.served_by.get_or_insert(host);
                }
            }
            ProtocolEvent::Remulticast { seq, .. } => {
                self.remulticast_at.entry(seq.raw()).or_insert(at_nanos);
                for ((_, s), o) in self.open.iter_mut() {
                    if *s == seq.raw() {
                        o.served_at.get_or_insert(at_nanos);
                        o.served_by.get_or_insert(host);
                    }
                }
            }
            ProtocolEvent::RepairReceived { seq, from, kind } => {
                if *kind == "retrans" {
                    if let Some(&stale) = self.stale_serves.get(&(from.raw(), seq.raw())) {
                        self.split_brain.push(Anomaly::SplitBrainServe {
                            seq: *seq,
                            by: *from,
                            term: stale,
                            current: self.max_term,
                        });
                    }
                }
                let source = match *kind {
                    "heartbeat" => RepairSource::Heartbeat,
                    "retrans" => match self.roles.get(&from.raw()).copied() {
                        Some("logger_primary") => RepairSource::Primary,
                        Some("logger_secondary") => RepairSource::Secondary,
                        Some("logger_replica") => RepairSource::Replica,
                        Some("sender") => RepairSource::Sender,
                        _ => RepairSource::Unknown,
                    },
                    "data" => {
                        if self
                            .remulticast_at
                            .get(&seq.raw())
                            .is_some_and(|&t| t <= at_nanos)
                        {
                            RepairSource::Remulticast
                        } else {
                            RepairSource::LateOriginal
                        }
                    }
                    _ => RepairSource::Unknown,
                };
                if let Some(o) = self.open.get_mut(&(h, seq.raw())) {
                    o.repaired_at = Some(at_nanos);
                    o.source = source;
                }
            }
            ProtocolEvent::RepairDuplicate { seq, .. } => {
                *self.dups_per_host_seq.entry((h, seq.raw())).or_insert(0) += 1;
            }
            ProtocolEvent::Recovered { seq, latency_nanos } => {
                if let Some(o) = self.open.remove(&(h, seq.raw())) {
                    self.by_age.remove(&(o.detected_at, h, seq.raw()));
                    self.recovered += 1;
                    self.close_timeline(
                        host,
                        *seq,
                        o,
                        RecoveryOutcome::Recovered,
                        Some(*latency_nanos),
                    );
                }
            }
            ProtocolEvent::RecoveryAbandoned { seq } => {
                if let Some(o) = self.open.remove(&(h, seq.raw())) {
                    self.by_age.remove(&(o.detected_at, h, seq.raw()));
                    self.abandoned += 1;
                    self.close_timeline(host, *seq, o, RecoveryOutcome::Abandoned, None);
                }
            }
            ProtocolEvent::Settled { seq, .. } => {
                self.settled.insert(seq.raw());
            }
            ProtocolEvent::EpochActive { epoch, .. } => {
                self.active_epochs.insert(epoch.raw());
            }
            ProtocolEvent::TermElected { term, leader } => {
                match self.term_leaders.get(term) {
                    Some(&prev) if prev != *leader => {
                        self.split_brain.push(Anomaly::TermConflict {
                            term: *term,
                            a: prev,
                            b: *leader,
                        });
                    }
                    Some(_) => {}
                    None => {
                        self.term_leaders.insert(*term, *leader);
                    }
                }
                self.max_term = self.max_term.max(*term);
            }
            ProtocolEvent::AuthorityServe { seq, term } if *term < self.max_term => {
                self.stale_serves.insert((h, seq.raw()), *term);
            }
            ProtocolEvent::StaleTermFenced { .. } => {
                self.fenced_rejects += 1;
            }
            _ => {}
        }
        self.peak_bytes = self.peak_bytes.max(self.approx_resident_bytes());
    }

    /// Consumes one parsed [`TraceRecord`].
    pub fn push_record(&mut self, r: &TraceRecord) {
        self.push(r.at_nanos, r.host, &r.event);
    }

    /// Closes the stream: whatever is still open becomes an unrecovered
    /// gap, the end-of-stream anomaly detectors run over the aggregate
    /// maps, and the folded state becomes a [`RecoveryReport`].
    pub fn finish(mut self) -> RecoveryReport {
        let end_ns = self.end_ns;
        let cfg = self.cfg.analyze.clone();

        // Trailing silence: from the last transmission to end-of-run.
        for (&h, &t) in &self.last_tx {
            let m = self.max_silence.entry(h).or_insert(0);
            *m = (*m).max(end_ns.saturating_sub(t));
        }

        // Horizon evictions first (eviction order), then end-of-stream
        // gaps in key order — exactly the batch order when no horizon.
        let mut anomalies: Vec<Anomaly> = std::mem::take(&mut self.gap_anomalies);
        let still_open: Vec<((u64, u32), OpenRecovery)> =
            std::mem::take(&mut self.open).into_iter().collect();
        self.by_age.clear();
        for ((h, s), o) in still_open {
            self.unrecovered += 1;
            anomalies.push(Anomaly::UnrecoveredGap {
                host: HostId(h),
                seq: Seq(s),
                detected_at_nanos: o.detected_at,
            });
            self.close_timeline(HostId(h), Seq(s), o, RecoveryOutcome::Unrecovered, None);
        }

        let secondaries = self
            .roles
            .values()
            .filter(|r| **r == "logger_secondary")
            .count() as u64;
        let nack_bound = cfg
            .nack_fan_in_bound
            .or((secondaries > 0).then_some(secondaries + 2));
        let max_nack_fan_in = self.requests_per_seq.values().copied().max().unwrap_or(0);
        if let Some(bound) = nack_bound {
            for (&s, &n) in &self.requests_per_seq {
                if n > bound {
                    anomalies.push(Anomaly::NackImplosion {
                        seq: Seq(s),
                        requests: n,
                        bound,
                    });
                }
            }
        }

        let mut duplicate_repairs = 0u64;
        for (&(host, s), &n) in &self.dups_per_host_seq {
            duplicate_repairs += n;
            if n > cfg.duplicate_bound {
                anomalies.push(Anomaly::ExcessDuplicateRepairs {
                    host: HostId(host),
                    seq: Seq(s),
                    duplicates: n,
                    bound: cfg.duplicate_bound,
                });
            }
        }

        if let Some(h_max) = cfg.h_max_nanos {
            let bound = h_max + h_max / 2;
            for (&h, &gap) in &self.max_silence {
                if gap > bound {
                    anomalies.push(Anomaly::HeartbeatSilence {
                        host: HostId(h),
                        gap_nanos: gap,
                        h_max_nanos: h_max,
                    });
                }
            }
        }

        for (&s, &e) in &self.sent_epoch {
            if !self.active_epochs.contains(&e) || self.settled.contains(&s) {
                continue;
            }
            let at = self.sent_at.get(&s).copied().unwrap_or(0);
            if at + cfg.settle_slack_nanos < end_ns {
                anomalies.push(Anomaly::StalledSettlement {
                    seq: Seq(s),
                    sent_at_nanos: at,
                });
            }
        }

        // Split-brain detections after every other detector — same
        // position as the batch analyzer, so the parity tests hold.
        anomalies.append(&mut self.split_brain);

        let peak_bytes = self.peak_bytes.max(self.approx_resident_bytes());
        RecoveryReport {
            timelines: self.timelines.into_vec(),
            recovered: self.recovered,
            abandoned: self.abandoned,
            unrecovered: self.unrecovered,
            detection: self.detection.snapshot(),
            request: self.request.snapshot(),
            serve: self.serve.snapshot(),
            return_leg: self.return_leg.snapshot(),
            total: self.total.snapshot(),
            sources: self.sources,
            duplicate_repairs,
            max_nack_fan_in,
            telescoping: self.telescoping,
            truncated_gap_spans: self.truncated_gap_spans,
            fenced_rejects: self.fenced_rejects,
            anomalies,
            stream: StreamStats {
                streamed: true,
                peak_live_timelines: self.peak_live,
                peak_resident_bytes: peak_bytes,
                force_evicted: self.force_evicted,
                aged_out: self.aged_out,
                out_of_order: self.out_of_order,
            },
        }
    }
}

/// One still-open recovery, as listed by the admin surface's
/// `/timelines/live` route (see [`crate::doctor`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveGap {
    /// The receiver still missing the packet.
    pub host: HostId,
    /// The missing sequence.
    pub seq: Seq,
    /// When the loss was detected.
    pub detected_at_nanos: u64,
    /// NACK packets sent for it so far.
    pub nacks_sent: u32,
    /// A logger has already served a retransmission.
    pub served: bool,
    /// The repair arrived but the recovery is not yet settled.
    pub repaired: bool,
}

/// A [`TraceSink`] wrapping an [`OnlineAnalyzer`], so a live scenario
/// can audit itself in bounded memory — no [`CollectorSink`]
/// materialization step. Fan it out next to a `MetricsRegistry` or a
/// `JsonLinesSink` and call [`finish`](OnlineAnalyzerSink::finish)
/// after the run.
///
/// [`CollectorSink`]: crate::CollectorSink
#[derive(Debug)]
pub struct OnlineAnalyzerSink {
    inner: Mutex<OnlineAnalyzer>,
}

impl OnlineAnalyzerSink {
    /// A sink analyzing with the given tunables.
    pub fn new(cfg: OnlineConfig) -> Self {
        OnlineAnalyzerSink {
            inner: Mutex::new(OnlineAnalyzer::new(cfg)),
        }
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.inner.lock().unwrap().records()
    }

    /// Most timelines ever open at once.
    pub fn peak_live_timelines(&self) -> u64 {
        self.inner.lock().unwrap().peak_live_timelines()
    }

    /// Finalizes the analysis, leaving a fresh analyzer (with the same
    /// tunables) behind — the sink may still be shared with a world
    /// that outlives the report.
    pub fn finish(&self) -> RecoveryReport {
        let mut guard = self.inner.lock().unwrap();
        let cfg = guard.cfg.clone();
        std::mem::replace(&mut *guard, OnlineAnalyzer::new(cfg)).finish()
    }
}

impl TraceSink for OnlineAnalyzerSink {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        self.inner.lock().unwrap().push(at_nanos, host, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use lbrm_wire::EpochId;

    const SENDER: HostId = HostId(1);
    const PRIMARY: HostId = HostId(2);
    const RX: HostId = HostId(40);

    fn rec(at_ms: u64, host: HostId, event: ProtocolEvent) -> TraceRecord {
        TraceRecord {
            at_nanos: at_ms * 1_000_000,
            host,
            event,
        }
    }

    fn lossy_stream(packets: u32) -> Vec<TraceRecord> {
        let mut v = vec![
            rec(0, SENDER, ProtocolEvent::RoleAnnounced { role: "sender" }),
            rec(
                0,
                PRIMARY,
                ProtocolEvent::RoleAnnounced {
                    role: "logger_primary",
                },
            ),
            rec(0, RX, ProtocolEvent::RoleAnnounced { role: "receiver" }),
        ];
        for i in 1..=packets {
            let t = u64::from(i) * 100;
            v.push(rec(
                t,
                SENDER,
                ProtocolEvent::DataSent {
                    seq: Seq(i),
                    epoch: EpochId(0),
                },
            ));
            // Every third packet is lost at RX and recovered.
            if i % 3 == 0 {
                v.push(rec(
                    t + 10,
                    RX,
                    ProtocolEvent::GapDetected {
                        first: Seq(i),
                        last: Seq(i),
                    },
                ));
                v.push(rec(
                    t + 20,
                    RX,
                    ProtocolEvent::NackSent {
                        target: PRIMARY,
                        packets: 1,
                        first: Seq(i),
                        last: Seq(i),
                    },
                ));
                v.push(rec(
                    t + 30,
                    PRIMARY,
                    ProtocolEvent::RetransServed {
                        seq: Seq(i),
                        multicast: false,
                        to: RX,
                    },
                ));
                v.push(rec(
                    t + 40,
                    RX,
                    ProtocolEvent::RepairReceived {
                        seq: Seq(i),
                        from: PRIMARY,
                        kind: "retrans",
                    },
                ));
                v.push(rec(
                    t + 40,
                    RX,
                    ProtocolEvent::Recovered {
                        seq: Seq(i),
                        latency_nanos: 30 * 1_000_000,
                    },
                ));
            }
        }
        v
    }

    fn run_online(records: &[TraceRecord], cfg: OnlineConfig) -> RecoveryReport {
        let mut a = OnlineAnalyzer::new(cfg);
        for r in records {
            a.push_record(r);
        }
        a.finish()
    }

    #[test]
    fn matches_batch_exactly_on_a_clean_stream() {
        let records = lossy_stream(30);
        let batch = analyze(&records, &AnalyzeConfig::default());
        let online = run_online(&records, OnlineConfig::default());

        assert_eq!(online.recovered, batch.recovered);
        assert_eq!(online.abandoned, batch.abandoned);
        assert_eq!(online.unrecovered, batch.unrecovered);
        assert_eq!(online.telescoping, batch.telescoping);
        assert_eq!(online.sources, batch.sources);
        assert_eq!(online.anomalies, batch.anomalies);
        assert_eq!(online.max_nack_fan_in, batch.max_nack_fan_in);
        assert_eq!(online.total.samples(), batch.total.samples());
        assert_eq!(online.detection.samples(), batch.detection.samples());
        assert_eq!(online.request.samples(), batch.request.samples());
        assert_eq!(online.serve.samples(), batch.serve.samples());
        assert_eq!(online.return_leg.samples(), batch.return_leg.samples());
        assert_eq!(online.timelines.len(), batch.timelines.len());
        for (a, b) in online.timelines.iter().zip(&batch.timelines) {
            assert_eq!(a.render(), b.render());
        }
        assert!(online.stream.streamed);
        assert!(!batch.stream.streamed);
        // One loss open at a time in this stream.
        assert_eq!(online.stream.peak_live_timelines, 1);
        assert!(online.stream.peak_resident_bytes > 0);
    }

    #[test]
    fn eviction_keeps_live_state_bounded() {
        // 10 packets all lost at once, never recovered: batch peaks at
        // 10 live timelines; a cap of 3 bounds the stream at 3.
        let mut records = vec![rec(
            0,
            SENDER,
            ProtocolEvent::RoleAnnounced { role: "sender" },
        )];
        records.push(rec(
            10,
            RX,
            ProtocolEvent::GapDetected {
                first: Seq(1),
                last: Seq(10),
            },
        ));
        records.push(rec(500, RX, ProtocolEvent::FreshnessLost));
        let cfg = OnlineConfig {
            analyze: AnalyzeConfig {
                h_max_nanos: None,
                ..AnalyzeConfig::default()
            },
            max_live_timelines: Some(3),
            ..OnlineConfig::default()
        };
        let report = run_online(&records, cfg);
        assert_eq!(report.stream.peak_live_timelines, 3);
        assert_eq!(report.stream.force_evicted, 7);
        // The 3 survivors close as unrecovered gaps; the evicted 7 are
        // only counted, never flagged.
        assert_eq!(report.unrecovered, 3);
        assert_eq!(
            report
                .anomalies
                .iter()
                .filter(|a| a.kind() == "unrecovered_gap")
                .count(),
            3
        );
    }

    #[test]
    fn horizon_ages_out_stale_timelines_as_unrecovered() {
        let mut records = vec![rec(
            0,
            SENDER,
            ProtocolEvent::RoleAnnounced { role: "sender" },
        )];
        records.push(rec(
            10,
            RX,
            ProtocolEvent::GapDetected {
                first: Seq(1),
                last: Seq(1),
            },
        ));
        // A later record far past the horizon triggers the age-out; the
        // recovery that eventually arrives finds the timeline closed.
        records.push(rec(5_000, RX, ProtocolEvent::FreshnessLost));
        records.push(rec(
            5_001,
            RX,
            ProtocolEvent::Recovered {
                seq: Seq(1),
                latency_nanos: 1,
            },
        ));
        let cfg = OnlineConfig {
            analyze: AnalyzeConfig {
                h_max_nanos: None,
                ..AnalyzeConfig::default()
            },
            horizon_nanos: Some(1_000 * 1_000_000),
            ..OnlineConfig::default()
        };
        let report = run_online(&records, cfg);
        assert_eq!(report.stream.aged_out, 1);
        assert_eq!(report.unrecovered, 1);
        assert_eq!(report.recovered, 0);
        assert_eq!(report.anomalies[0].kind(), "unrecovered_gap");
        assert!(!report.is_clean());
    }

    #[test]
    fn sampled_reservoirs_keep_exact_counts() {
        let records = lossy_stream(600); // 200 recoveries
        let batch = analyze(&records, &AnalyzeConfig::default());
        let cfg = OnlineConfig {
            stage_reservoir: 16,
            timeline_reservoir: 8,
            ..OnlineConfig::default()
        };
        let online = run_online(&records, cfg);
        assert_eq!(online.recovered, batch.recovered);
        assert_eq!(online.total.count(), batch.total.count());
        assert!(online.total.is_sampled());
        assert_eq!(online.total.mean(), batch.total.mean());
        assert_eq!(online.total.max(), batch.total.max());
        assert_eq!(online.timelines.len(), 8);
        assert_eq!(online.anomalies, batch.anomalies);
        // At this scale the streaming analyzer's resident state (tiny
        // reservoirs, bounded histograms) undercuts the batch record
        // vector it never materializes.
        assert!(online.stream.peak_resident_bytes < batch.stream.peak_resident_bytes);
    }

    #[test]
    fn sink_adapter_feeds_the_analyzer_and_resets_on_finish() {
        let sink = OnlineAnalyzerSink::new(OnlineConfig::default());
        for r in lossy_stream(9) {
            sink.record(r.at_nanos, r.host, &r.event);
        }
        assert!(sink.records() > 0);
        let report = sink.finish();
        assert_eq!(report.recovered, 3);
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(sink.records(), 0, "finish leaves a fresh analyzer");
    }

    #[test]
    fn split_brain_detector_matches_batch() {
        // A stale primary serves seq 3 after term 2 elects a new
        // leader; RX accepts one repair from it (split-brain) while a
        // second serve is fenced (rejected, counted only).
        let new_leader = HostId(3);
        let mut records = lossy_stream(9);
        records.push(rec(
            1000,
            SENDER,
            ProtocolEvent::TermElected {
                term: 2,
                leader: new_leader,
            },
        ));
        records.push(rec(
            1010,
            PRIMARY,
            ProtocolEvent::AuthorityServe {
                seq: Seq(3),
                term: 1,
            },
        ));
        records.push(rec(
            1020,
            RX,
            ProtocolEvent::RepairReceived {
                seq: Seq(3),
                from: PRIMARY,
                kind: "retrans",
            },
        ));
        records.push(rec(
            1030,
            RX,
            ProtocolEvent::StaleTermFenced {
                from: PRIMARY,
                term: 1,
            },
        ));
        // A second leader announced for term 2: a term conflict.
        records.push(rec(
            1040,
            SENDER,
            ProtocolEvent::TermElected {
                term: 2,
                leader: PRIMARY,
            },
        ));
        let batch = analyze(&records, &AnalyzeConfig::default());
        let online = run_online(&records, OnlineConfig::default());
        assert_eq!(online.anomalies, batch.anomalies);
        assert_eq!(online.fenced_rejects, batch.fenced_rejects);
        assert_eq!(online.fenced_rejects, 1);
        let kinds: Vec<&str> = online.anomalies.iter().map(|a| a.kind()).collect();
        assert!(kinds.contains(&"split_brain_serve"), "{kinds:?}");
        assert!(kinds.contains(&"term_conflict"), "{kinds:?}");
        // Split-brain anomalies come after every other detector's, in
        // stream order (the serve at t=1020 precedes the conflicting
        // announce at t=1040).
        let n = kinds.len();
        assert_eq!(&kinds[n - 2..], ["split_brain_serve", "term_conflict"]);
    }

    #[test]
    fn out_of_order_records_are_counted() {
        let mut records = lossy_stream(9);
        records.swap(1, 4);
        let online = run_online(&records, OnlineConfig::default());
        assert!(online.stream.out_of_order > 0);
    }
}
