//! The simulator's future-event queue: a hierarchical timer wheel with a
//! binary-heap reference backend.
//!
//! Profiling showed [`crate::world::World`]'s event-queue pops dominating
//! the DIS-scenario step rate once sites × receivers grows past a few
//! hundred hosts — exactly the dense heartbeat/timer traffic LBRM §2.1
//! generates. A [`BinaryHeap`] pays O(log n) compares *and moves* per
//! pop; the [`QueueBackend::Wheel`] backend replaces that with a
//! hierarchical timer wheel whose push and pop are amortized O(1).
//!
//! # Shape
//!
//! Virtual time is bucketed into ticks of `2^22` ns (≈4.2 ms). The wheel
//! has [`LEVELS`] levels of [`SLOTS`] slots each; a level-`l` slot spans
//! `256^l` ticks, so level 0 covers deadlines up to ≈1.07 s away (one
//! tick per slot), level 1 up to ≈4.6 min, and six levels cover the
//! entire `u64` nanosecond range. The tick size is tuned (empirically,
//! against the DIS-scenario step rate) to the traffic the scenario
//! actually schedules: per-link latencies from [`crate::topology`] (a
//! few to ~80 ms) and the heartbeat band (`h_min` = 250 ms) land in
//! level 0, so the common case is a single bucket push with no cascade;
//! only the idle `h_max` backoff tail (seconds) sits higher.
//!
//! Events whose deadline falls inside the currently *open* tick live in
//! `near`, a ready list kept sorted *descending* by
//! `(deadline, tiebreak)`: the earliest event sits at the back, a pop is
//! `Vec::pop`, and draining a bucket is one batch sort (of a few events)
//! rather than per-event heap sifts. Advancing the clock drains the next
//! occupied slot into `near` (level 0) or cascades it one level down
//! (levels ≥ 1); per-level occupancy bitmaps make "find the next occupied
//! slot" a handful of word scans instead of a walk over empty buckets.
//!
//! # Determinism
//!
//! Pop order is **exactly** the heap's: strictly increasing
//! `(deadline, tiebreak)` with the tiebreak assigned at push (FIFO within
//! a deadline). The wheel only ever partitions events by time bucket —
//! the `near` heap restores the total order inside a bucket, buckets are
//! opened in time order, and cascading moves events between buckets
//! without reordering them. Every experiment therefore produces
//! byte-identical output under either backend, which
//! `tests/event_queue_diff_sim.rs` pins on seeded lossy runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timer wheel: amortized O(1) push/pop (the default).
    #[default]
    Wheel,
    /// Binary heap: O(log n) push/pop. Kept for differential testing —
    /// the wheel must reproduce its pop order bit-for-bit.
    Heap,
}

impl QueueBackend {
    /// Backend selected by the `LBRM_SIM_QUEUE` environment variable.
    /// This is the hook the differential tests use to run whole
    /// experiment binaries under both backends, so it is strict: only
    /// `"wheel"`, `"heap"`, the empty string, or unset are accepted. A
    /// typo in the CI matrix must fail loudly — silently falling back to
    /// the wheel would run the same backend twice and the differential
    /// coverage would evaporate without anyone noticing.
    ///
    /// # Panics
    ///
    /// Panics on any other value.
    pub fn from_env() -> QueueBackend {
        match std::env::var("LBRM_SIM_QUEUE") {
            Err(std::env::VarError::NotPresent) => QueueBackend::Wheel,
            Err(e) => panic!("LBRM_SIM_QUEUE is not valid unicode: {e}"),
            Ok(v) => match Self::parse(&v) {
                Some(b) => b,
                None => {
                    panic!("LBRM_SIM_QUEUE must be \"wheel\" or \"heap\" (or unset), got {v:?}")
                }
            },
        }
    }

    /// Parses a backend name: `"wheel"`, `"heap"` (case-insensitive), or
    /// the empty string (treated as unset → the default wheel).
    pub fn parse(v: &str) -> Option<QueueBackend> {
        if v.is_empty() || v.eq_ignore_ascii_case("wheel") {
            Some(QueueBackend::Wheel)
        } else if v.eq_ignore_ascii_case("heap") {
            Some(QueueBackend::Heap)
        } else {
            None
        }
    }
}

/// One scheduled event: ordered by `(at, tiebreak)` only — the payload
/// never participates in comparisons.
struct Entry<T> {
    at: SimTime,
    tiebreak: u128,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tiebreak == other.tiebreak
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.tiebreak).cmp(&(other.at, other.tiebreak))
    }
}

/// log2 of the tick size in nanoseconds: `2^22` ns ≈ 4.2 ms per tick.
///
/// Re-measured at the 1000-site × 30-receiver regime (per-shard queues,
/// ~100k+ resident events): shifts 18/20 (finer) and 26 (coarser) all
/// lose 10–25% on the `dis_scenario_1000x30` workload, 24 is within
/// noise of 22. The scenario's dominant deltas (5–80 ms links, 250 ms
/// heartbeat) land in level 0 at 22 with small enough buckets that the
/// ready-list batch sort stays cheap.
const GRANULARITY_SHIFT: u32 = 22;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level (`2^LEVEL_BITS`).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels: 6 × 8 bits of tick ≥ the 42 tick bits a `u64` of nanoseconds
/// leaves after the granularity shift, so any `SimTime` is addressable.
const LEVELS: usize = 6;
/// Words in a level's occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// One wheel level: `SLOTS` buckets plus an occupancy bitmap so the next
/// occupied bucket is found by word scans, not a slot walk.
struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    occupied: [u64; WORDS],
    count: usize,
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            count: 0,
        }
    }
}

/// Slot index of `tick` at `level` (its residue in that level's rotation).
#[inline]
fn slot_index(tick: u64, level: usize) -> usize {
    ((tick >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// Level housing an event `delta` ticks ahead of the open tick
/// (`delta ≥ 1`). Level `l` takes `delta ∈ (256^l, 256^(l+1)]` — the
/// *inclusive* upper bound (one full rotation ahead, which aliases onto
/// the current slot index) is what the distance-256 case of
/// [`next_occupied`] exists for.
#[inline]
fn level_for(delta: u64) -> usize {
    let d = delta - 1;
    if d == 0 {
        0
    } else {
        (((63 - d.leading_zeros()) / LEVEL_BITS) as usize).min(LEVELS - 1)
    }
}

/// Distance (in slots, `1..=SLOTS`) and index of the next occupied slot
/// strictly after `idx`, wrapping circularly; `idx` itself is reported at
/// distance `SLOTS` (an event one full rotation ahead).
fn next_occupied(occ: &[u64; WORDS], idx: usize) -> Option<(u64, usize)> {
    let mut scanned = 0usize;
    while scanned < SLOTS {
        let pos = (idx + 1 + scanned) & (SLOTS - 1);
        let word = pos / 64;
        let bit = pos % 64;
        let w = occ[word] >> bit;
        if w != 0 {
            let t = w.trailing_zeros() as usize;
            if scanned + t < SLOTS {
                let dist = (scanned + t + 1) as u64;
                return Some((dist, (idx + dist as usize) & (SLOTS - 1)));
            }
        }
        scanned += 64 - bit;
    }
    None
}

/// The hierarchical timer wheel.
struct Wheel<T> {
    /// The open tick: events at `tick <= cur` live in `near`.
    cur: u64,
    /// Events inside the open tick, a min-heap on `(at, tiebreak)`.
    ///
    /// This was a descending-sorted `Vec` with exact-position inserts
    /// until the 1000-site regime: a single heartbeat fan-out there
    /// lands tens of thousands of LAN deliveries inside one 4.2 ms
    /// tick, and O(n) `Vec::insert` per same-tick push turns that burst
    /// into O(n²) memmoves. A binary heap keeps the burst at
    /// O(n log n) while popping the identical `(at, tiebreak)` order
    /// (tiebreaks are unique, so heap ordering is total).
    near: BinaryHeap<Reverse<Entry<T>>>,
    levels: Vec<Level<T>>,
    /// Events resident in wheel slots (excludes `near`).
    resident: usize,
}

impl<T> Wheel<T> {
    fn new() -> Wheel<T> {
        Wheel {
            cur: 0,
            near: BinaryHeap::new(),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            resident: 0,
        }
    }

    fn push(&mut self, e: Entry<T>) {
        let tick = e.at.nanos() >> GRANULARITY_SHIFT;
        if tick <= self.cur {
            self.near.push(Reverse(e));
            return;
        }
        let level = level_for(tick - self.cur);
        let slot = slot_index(tick, level);
        let lv = &mut self.levels[level];
        lv.slots[slot].push(e);
        lv.occupied[slot / 64] |= 1 << (slot % 64);
        lv.count += 1;
        self.resident += 1;
    }

    /// Moves the clock to the next occupied bucket, draining it into
    /// `near` (level 0) or cascading it a level down (levels ≥ 1).
    /// Returns `false` when the wheel holds no events at all.
    fn advance(&mut self) -> bool {
        loop {
            if self.resident == 0 {
                return false;
            }
            // Earliest bucket across levels. A level-0 hit is an exact
            // tick; a level-l hit is that slot's base tick, a lower bound
            // on its contents. Ties go to the *highest* level so a
            // coarse bucket sharing its base with a finer one cascades
            // first and its events merge into the finer buckets below.
            let mut best: Option<(u64, usize, usize)> = None;
            for level in 0..LEVELS {
                let lv = &self.levels[level];
                if lv.count == 0 {
                    continue;
                }
                let idx = slot_index(self.cur, level);
                if let Some((dist, slot)) = next_occupied(&lv.occupied, idx) {
                    let shift = LEVEL_BITS as usize * level;
                    let base = ((self.cur >> shift) + dist) << shift;
                    match best {
                        Some((b, _, _)) if b < base => {}
                        _ => best = Some((base, level, slot)),
                    }
                }
            }
            let Some((base, level, slot)) = best else {
                debug_assert!(false, "resident events but no occupied slot");
                return false;
            };
            let lv = &mut self.levels[level];
            let mut entries = std::mem::take(&mut lv.slots[slot]);
            lv.occupied[slot / 64] &= !(1 << (slot % 64));
            lv.count -= entries.len();
            self.resident -= entries.len();
            if level == 0 {
                self.cur = base;
                // `near` is empty here (advance only runs when it is), so
                // the drained bucket *becomes* the ready list after one
                // O(n) heapify; `map(Reverse)` collects in place, so
                // steady state moves one buffer per open tick.
                debug_assert!(self.near.is_empty());
                self.near = BinaryHeap::from(entries.into_iter().map(Reverse).collect::<Vec<_>>());
                return true;
            }
            // Cascade: park the clock one tick shy of the bucket's base
            // so every re-push lands strictly below this level (an event
            // exactly at `base` gets delta 1 → level 0, not `near`).
            self.cur = base - 1;
            for e in entries.drain(..) {
                self.push(e);
            }
            self.levels[level].slots[slot] = entries;
        }
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        loop {
            if let Some(Reverse(e)) = self.near.pop() {
                self.resident_check();
                return Some(e);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    fn next_at(&mut self) -> Option<SimTime> {
        loop {
            if let Some(Reverse(e)) = self.near.peek() {
                return Some(e.at);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    #[inline]
    fn resident_check(&self) {
        debug_assert!(self.levels.iter().map(|l| l.count).sum::<usize>() == self.resident);
    }
}

enum Backend<T> {
    Heap(BinaryHeap<Reverse<Entry<T>>>),
    Wheel(Wheel<T>),
}

/// Tiebreak bit marking auto-assigned (push-order) keys. Caller-provided
/// keys from [`EventQueue::push_keyed`] must stay below this bit, so the
/// two key spaces never collide even when mixed in one queue.
const AUTO_KEY_BIT: u128 = 1 << 127;

/// The simulator's future-event queue: events pop in strictly increasing
/// `(deadline, tiebreak)` under either backend. [`EventQueue::push`]
/// assigns tiebreaks in push order (FIFO within a deadline);
/// [`EventQueue::push_keyed`] lets the caller supply the tiebreak, which
/// is how the sharded [`crate::world::World`] imposes one global,
/// placement-invariant event order across per-shard queues.
pub struct EventQueue<T> {
    tiebreak: u64,
    len: usize,
    backend: Backend<T>,
}

impl<T> EventQueue<T> {
    /// An empty queue on the given backend.
    pub fn new(backend: QueueBackend) -> EventQueue<T> {
        EventQueue {
            tiebreak: 0,
            len: 0,
            backend: match backend {
                QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
                QueueBackend::Wheel => Backend::Wheel(Wheel::new()),
            },
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Heap(_) => QueueBackend::Heap,
            Backend::Wheel(_) => QueueBackend::Wheel,
        }
    }

    /// Schedules `item` at `at`, after everything already scheduled at
    /// the same instant (and after any [`EventQueue::push_keyed`] event
    /// at that instant — auto keys sort above all caller keys).
    pub fn push(&mut self, at: SimTime, item: T) {
        self.tiebreak += 1;
        self.push_entry(at, AUTO_KEY_BIT | u128::from(self.tiebreak), item);
    }

    /// Schedules `item` at `at` with a caller-supplied tiebreak key.
    /// Keys must be unique per `(at, key)` pair and below the auto-key
    /// bit (`1 << 127`); events at the same instant pop in key order
    /// regardless of push order.
    pub fn push_keyed(&mut self, at: SimTime, key: u128, item: T) {
        debug_assert!(
            key & AUTO_KEY_BIT == 0,
            "keyed pushes must stay below bit 127"
        );
        self.push_entry(at, key, item);
    }

    fn push_entry(&mut self, at: SimTime, tiebreak: u128, item: T) {
        let e = Entry { at, tiebreak, item };
        self.len += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse(e)),
            Backend::Wheel(w) => w.push(e),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_keyed().map(|(at, _, item)| (at, item))
    }

    /// Removes and returns the earliest event with its tiebreak key.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u128, T)> {
        let e = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse(e)| e),
            Backend::Wheel(w) => w.pop(),
        }?;
        self.len -= 1;
        Some((e.at, e.tiebreak, e.item))
    }

    /// Deadline of the earliest event without removing it. (`&mut`
    /// because the wheel may advance its clock to locate the minimum —
    /// invisible to callers.)
    pub fn next_at(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse(e)| e.at),
            Backend::Wheel(w) => w.next_at(),
        }
    }

    /// Number of scheduled events (bucket-resident ones included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Pops from both backends after an identical push schedule must
    /// agree exactly — including interleaved pushes at and around the
    /// current time, which is how the simulator actually drives it.
    #[test]
    fn wheel_matches_heap_under_random_interleaved_churn() {
        for seed in [1u64, 7, 99, 4242] {
            let mut heap = EventQueue::new(QueueBackend::Heap);
            let mut wheel = EventQueue::new(QueueBackend::Wheel);
            let mut s1 = seed;
            let mut s2 = seed;
            let drive = |q: &mut EventQueue<u64>, s: &mut u64| {
                let mut now = SimTime::ZERO;
                let mut popped = Vec::new();
                let mut id = 0u64;
                for _ in 0..64 {
                    q.push(SimTime::from_nanos(splitmix(s) % 2_000_000), id);
                    id += 1;
                }
                while let Some((at, item)) = q.pop() {
                    assert!(at >= now, "pops must be time-monotonic");
                    now = at;
                    popped.push((at.nanos(), item));
                    if popped.len() >= 4_000 {
                        break;
                    }
                    // Re-arm with deltas spanning near (same tick), the
                    // tick size, link latencies, heartbeats, and far
                    // cascade-heavy backoffs.
                    let r = splitmix(s);
                    let delta = match r % 7 {
                        0 => 0,
                        1 => r % 1_000,
                        2 => 100_000 + r % 900_000,
                        3 => 1_000_000 + r % 30_000_000,
                        4 => 250_000_000,
                        5 => 2_000_000_000 + r % 30_000_000_000,
                        _ => 300_000_000_000 + r % 1_000_000_000_000,
                    };
                    if !r.is_multiple_of(3) {
                        q.push(now + Duration::from_nanos(delta), id);
                        id += 1;
                    }
                }
                popped
            };
            let h = drive(&mut heap, &mut s1);
            let w = drive(&mut wheel, &mut s2);
            assert_eq!(h, w, "seed {seed}: wheel must replay the heap exactly");
        }
    }

    #[test]
    fn fifo_within_identical_deadline() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::new(backend);
            let t = SimTime::from_millis(5);
            for i in 0..100u64 {
                q.push(t, i);
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    /// Deltas of exactly one full rotation (256 ticks, 65536 ticks, …)
    /// alias onto the pusher's own slot index — the distance-256 scan
    /// case — and must still fire at the right time.
    #[test]
    fn full_rotation_aliases_fire_on_time() {
        let tick = 1u64 << GRANULARITY_SHIFT;
        let mut q: EventQueue<u64> = EventQueue::new(QueueBackend::Wheel);
        q.push(SimTime::from_nanos(1), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        for (i, rot) in [256u64, 65_536, 16_777_216].iter().enumerate() {
            q.push(SimTime::from_nanos(rot * tick), i as u64 + 1);
        }
        q.push(SimTime::from_nanos(2 * tick), 100);
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(2 * tick), 100));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(256 * tick), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(65_536 * tick), 2));
        assert_eq!(
            q.pop().unwrap(),
            (SimTime::from_nanos(16_777_216 * tick), 3)
        );
        assert!(q.pop().is_none());
    }

    /// A coarse bucket whose base coincides with an occupied fine bucket
    /// must cascade first so same-tick events from both merge in
    /// tiebreak order.
    #[test]
    fn tied_bucket_bases_merge_in_push_order() {
        let tick = 1u64 << GRANULARITY_SHIFT;
        let mut q: EventQueue<u64> = EventQueue::new(QueueBackend::Wheel);
        // 512 ticks ahead: level 1, slot base 512. Same instant also
        // reachable later as a level-0 push once cur advances.
        let far = SimTime::from_nanos(512 * tick + 7);
        q.push(far, 1);
        q.push(SimTime::from_nanos(300 * tick), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        // cur is now within level-1 range of `far`; this lands level 0.
        q.push(far, 3);
        assert_eq!(q.pop().unwrap(), (far, 1));
        assert_eq!(q.pop().unwrap(), (far, 3));
    }

    #[test]
    fn next_at_matches_pop_and_len_tracks() {
        let mut q: EventQueue<u32> = EventQueue::new(QueueBackend::Wheel);
        assert!(q.is_empty());
        assert_eq!(q.next_at(), None);
        let mut s = 33u64;
        for i in 0..500u32 {
            q.push(SimTime::from_nanos(splitmix(&mut s) % 40_000_000_000), i);
        }
        assert_eq!(q.len(), 500);
        let mut n = 500;
        while let Some(at) = q.next_at() {
            let (popped_at, _) = q.pop().expect("next_at implies nonempty");
            assert_eq!(at, popped_at);
            n -= 1;
            assert_eq!(q.len(), n);
        }
        assert_eq!(n, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_and_max_deadlines_survive() {
        let mut q: EventQueue<&'static str> = EventQueue::new(QueueBackend::Wheel);
        q.push(SimTime::MAX, "max");
        q.push(SimTime::from_secs(86_400 * 365), "year");
        q.push(SimTime::from_nanos(1), "now");
        assert_eq!(q.pop().unwrap().1, "now");
        assert_eq!(q.pop().unwrap().1, "year");
        assert_eq!(q.pop().unwrap().1, "max");
        assert!(q.pop().is_none());
    }

    #[test]
    fn env_selects_backend() {
        // Only asserts the parser, not the process env (tests share it).
        assert_eq!(QueueBackend::default(), QueueBackend::Wheel);
        assert_eq!(QueueBackend::parse("wheel"), Some(QueueBackend::Wheel));
        assert_eq!(QueueBackend::parse("WHEEL"), Some(QueueBackend::Wheel));
        assert_eq!(QueueBackend::parse("heap"), Some(QueueBackend::Heap));
        assert_eq!(QueueBackend::parse("Heap"), Some(QueueBackend::Heap));
        assert_eq!(QueueBackend::parse(""), Some(QueueBackend::Wheel));
    }

    /// A typo in the backend name (`"haep"`, `"wheell"`, …) must be a
    /// hard error, not a silent fall-back to the wheel: the CI matrix
    /// relies on `LBRM_SIM_QUEUE=heap` actually switching backends.
    #[test]
    fn unrecognized_backend_is_rejected() {
        for typo in ["haep", "wheell", "binaryheap", "0", "default"] {
            assert_eq!(QueueBackend::parse(typo), None, "{typo:?}");
        }
    }

    /// Keyed pushes impose `(at, key)` order regardless of push order,
    /// identically on both backends; auto-keyed pushes at the same
    /// instant sort after all keyed ones.
    #[test]
    fn keyed_pushes_pop_in_key_order_on_both_backends() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q: EventQueue<u32> = EventQueue::new(backend);
            let t = SimTime::from_millis(3);
            q.push_keyed(t, (7u128 << 64) | 1, 71);
            q.push_keyed(t, (2u128 << 64) | 9, 29);
            q.push(t, 999); // auto key: after every keyed event at `t`
            q.push_keyed(t, (2u128 << 64) | 3, 23);
            q.push_keyed(SimTime::from_millis(1), (9u128 << 64) | 9, 99);
            let order: Vec<(u128, u32)> =
                std::iter::from_fn(|| q.pop_keyed().map(|(_, k, i)| (k & !AUTO_KEY_BIT, i)))
                    .collect();
            assert_eq!(
                order,
                vec![
                    ((9u128 << 64) | 9, 99),
                    ((2u128 << 64) | 3, 23),
                    ((2u128 << 64) | 9, 29),
                    ((7u128 << 64) | 1, 71),
                    (1, 999),
                ],
                "{backend:?}"
            );
        }
    }

    /// Same keyed schedule, different push interleavings, both backends:
    /// the pop sequence (time, key, item) must be identical — this is
    /// the property the sharded world's cross-shard merge rests on.
    #[test]
    fn keyed_pop_order_is_push_order_invariant() {
        let mut s = 0xD15_EA5E_u64;
        let mut events: Vec<(SimTime, u128, u32)> = (0..500u32)
            .map(|i| {
                let at = SimTime::from_nanos(splitmix(&mut s) % 3_000_000_000);
                let ent = u128::from(splitmix(&mut s) % 64);
                ((at), (ent << 64) | u128::from(i), i)
            })
            .collect();
        let mut reference: Option<Vec<(SimTime, u128, u32)>> = None;
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            for pass in 0..2 {
                let mut q = EventQueue::new(backend);
                if pass == 1 {
                    events.reverse();
                }
                for (at, key, item) in &events {
                    q.push_keyed(*at, *key, *item);
                }
                let popped: Vec<_> = std::iter::from_fn(|| q.pop_keyed()).collect();
                match &reference {
                    None => reference = Some(popped),
                    Some(r) => assert_eq!(r, &popped, "{backend:?} pass {pass}"),
                }
            }
        }
    }

    #[test]
    fn level_for_boundaries() {
        assert_eq!(level_for(1), 0);
        assert_eq!(level_for(255), 0);
        assert_eq!(level_for(256), 0); // full rotation alias stays low
        assert_eq!(level_for(257), 1);
        assert_eq!(level_for(65_536), 1);
        assert_eq!(level_for(65_537), 2);
        assert_eq!(level_for(u64::MAX >> GRANULARITY_SHIFT), 5);
    }

    #[test]
    fn next_occupied_scans_wrap() {
        let mut occ = [0u64; WORDS];
        assert_eq!(next_occupied(&occ, 0), None);
        occ[0] |= 1 << 5;
        assert_eq!(next_occupied(&occ, 0), Some((5, 5)));
        assert_eq!(next_occupied(&occ, 5), Some((256, 5)));
        assert_eq!(next_occupied(&occ, 200), Some((61, 5)));
        occ[3] |= 1 << 63;
        assert_eq!(next_occupied(&occ, 5), Some((250, 255)));
    }
}
