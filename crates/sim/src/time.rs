//! Virtual time.
//!
//! [`SimTime`] is a nanosecond count since simulation start. Durations are
//! ordinary [`std::time::Duration`]s, so protocol configuration written
//! against real time works unchanged in the simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The far future: no event is scheduled later than this.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from nanoseconds since start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Builds an instant from microseconds since start.
    #[inline]
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds since start.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds since start.
    #[inline]
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds since start.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimTime {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates to zero if `earlier` is
    /// later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64),
        )
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, d: Duration) -> SimTime {
        self.saturating_add(d)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    #[inline]
    fn sub(self, other: SimTime) -> Duration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(0.25).nanos(), 250_000_000);
        assert!((SimTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(500));
        // Saturating difference.
        assert_eq!(SimTime::ZERO - t, Duration::ZERO);
        // Saturating addition.
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
