//! Deterministic discrete-event network simulator for LBRM experiments.
//!
//! The 1995 paper evaluates LBRM on wide-area internetworks whose defining
//! feature is the *tail circuit*: an expensive, congestible link joining
//! each site's LAN to the backbone (Figure 1). This crate reproduces that
//! environment on a laptop:
//!
//! * [`time`] — nanosecond-resolution virtual time.
//! * [`loss`] — per-segment loss models: Bernoulli, Gilbert–Elliott
//!   bursts, and deterministic outage windows (the paper's §2.1.1 "burst"
//!   congestion model).
//! * [`topology`] — sites (LAN + tail circuit + WAN distance) and hosts;
//!   per-segment propagation delay, bandwidth and FIFO queueing.
//! * [`world`] — the event loop: actors (protocol endpoints) exchange
//!   [`lbrm_wire::Packet`]s over unicast and TTL-scoped multicast, set
//!   timers, and draw from per-host deterministic RNG streams.
//! * [`queue`] — the future-event queue behind the loop: a hierarchical
//!   timer wheel (amortized O(1) push/pop) with a binary-heap reference
//!   backend that pops in the identical order.
//! * `shard` (internal) — site-sharded parallel execution with
//!   conservative synchronization; `LBRM_SIM_SHARDS` selects the shard
//!   count and results are byte-identical for any value.
//! * [`stats`] — per-segment-class, per-packet-kind traffic accounting
//!   (the quantities the paper's evaluation counts), plus the
//!   [`stats::BundleStats`] ledger modeling PDU-bundling framing
//!   (`LBRM_BUNDLE`) without perturbing the event stream.
//!
//! Everything is deterministic given the world seed: the same scenario
//! replays identically, which the test-suite asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loss;
pub mod queue;
pub(crate) mod shard;
pub mod stats;
pub mod time;
pub mod topology;
pub mod world;

pub use loss::LossModel;
pub use queue::{EventQueue, QueueBackend};
pub use stats::{BundleStats, KindBundle, NetStats, SegmentClass};
pub use time::SimTime;
pub use topology::{SiteParams, Topology, TopologyBuilder};
pub use world::{Actor, Ctx, World};
