//! Per-segment packet loss models.
//!
//! Three models cover the paper's evaluation needs:
//!
//! * [`LossModel::Bernoulli`] — independent loss with probability `p`,
//!   for background lossiness.
//! * [`LossModel::Gilbert`] — a two-state Markov chain (good/bad) stepped
//!   per traversal, producing bursty correlated loss.
//! * [`LossModel::Outages`] — deterministic windows during which *every*
//!   traversal is dropped: the §2.1.1 "burst congestion of duration
//!   t_burst" model, and the Figure-1 scenario where a congested tail
//!   circuit blacks out a whole site.
//!
//! A [`LossState`] pairs a model with its mutable chain state; every
//! network segment owns one, fed from the world's deterministic RNG.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimTime;

/// A loss model for one network segment.
#[derive(Debug, Clone, Default)]
pub enum LossModel {
    /// Never drops.
    #[default]
    None,
    /// Independent drop with probability `p` per traversal.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott chain stepped once per traversal.
    Gilbert {
        /// P(good → bad) per traversal.
        p_enter_bad: f64,
        /// P(bad → good) per traversal.
        p_exit_bad: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
    /// Deterministic outage windows `[start, end)`; all traversals inside
    /// a window are dropped. Windows must be sorted and disjoint.
    Outages {
        /// The outage windows.
        windows: Vec<(SimTime, SimTime)>,
    },
}

impl LossModel {
    /// Convenience constructor for an independent loss rate; `p = 0`
    /// collapses to [`LossModel::None`].
    pub fn rate(p: f64) -> LossModel {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        if p == 0.0 {
            LossModel::None
        } else {
            LossModel::Bernoulli { p }
        }
    }

    /// A single outage window `[start, start + len)`.
    pub fn outage(start: SimTime, len: std::time::Duration) -> LossModel {
        LossModel::Outages {
            windows: vec![(start, start + len)],
        }
    }
}

/// A loss model plus its mutable state.
#[derive(Debug, Clone)]
pub struct LossState {
    model: LossModel,
    /// Gilbert chain state: `true` while in the bad state.
    in_bad: bool,
    /// Counts of traversals dropped by this segment.
    pub dropped: u64,
    /// Counts of traversals passed by this segment.
    pub passed: u64,
}

impl LossState {
    /// Wraps a model with fresh state.
    pub fn new(model: LossModel) -> LossState {
        LossState {
            model,
            in_bad: false,
            dropped: 0,
            passed: 0,
        }
    }

    /// Evaluates one traversal at time `now`; `true` means *dropped*.
    pub fn drops(&mut self, now: SimTime, rng: &mut SmallRng) -> bool {
        let dropped = match &self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.random_bool(*p),
            LossModel::Gilbert {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                // Step the chain, then sample loss in the resulting state.
                if self.in_bad {
                    if rng.random_bool(*p_exit_bad) {
                        self.in_bad = false;
                    }
                } else if rng.random_bool(*p_enter_bad) {
                    self.in_bad = true;
                }
                let p = if self.in_bad { *loss_bad } else { *loss_good };
                p > 0.0 && rng.random_bool(p)
            }
            LossModel::Outages { windows } => windows
                .iter()
                .any(|&(start, end)| now >= start && now < end),
        };
        if dropped {
            self.dropped += 1;
        } else {
            self.passed += 1;
        }
        dropped
    }

    /// Observed drop fraction so far.
    pub fn drop_fraction(&self) -> f64 {
        let total = self.dropped + self.passed;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::time::Duration;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn none_never_drops() {
        let mut s = LossState::new(LossModel::None);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(!s.drops(SimTime::ZERO, &mut r));
        }
        assert_eq!(s.dropped, 0);
        assert_eq!(s.passed, 1000);
    }

    #[test]
    fn bernoulli_matches_rate() {
        let mut s = LossState::new(LossModel::rate(0.2));
        let mut r = rng();
        for _ in 0..20_000 {
            s.drops(SimTime::ZERO, &mut r);
        }
        let f = s.drop_fraction();
        assert!((f - 0.2).abs() < 0.02, "observed {f}");
    }

    #[test]
    fn rate_zero_is_none() {
        assert!(matches!(LossModel::rate(0.0), LossModel::None));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rate_rejects_out_of_range() {
        let _ = LossModel::rate(1.5);
    }

    #[test]
    fn outage_windows_are_exact() {
        let start = SimTime::from_secs(10);
        let mut s = LossState::new(LossModel::outage(start, Duration::from_secs(2)));
        let mut r = rng();
        assert!(!s.drops(SimTime::from_secs(9), &mut r));
        assert!(s.drops(SimTime::from_secs(10), &mut r));
        assert!(s.drops(SimTime::from_millis(11_999), &mut r));
        assert!(!s.drops(SimTime::from_secs(12), &mut r)); // end is exclusive
    }

    #[test]
    fn gilbert_produces_bursts() {
        // Long bad-state sojourns: consecutive drops should cluster far
        // beyond what an equal-rate Bernoulli model would produce.
        let mut s = LossState::new(LossModel::Gilbert {
            p_enter_bad: 0.01,
            p_exit_bad: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let mut r = rng();
        let outcomes: Vec<bool> = (0..50_000)
            .map(|_| s.drops(SimTime::ZERO, &mut r))
            .collect();
        let drops = outcomes.iter().filter(|&&d| d).count();
        assert!(drops > 0);
        // Count runs of consecutive drops; mean run length should be near
        // 1 / p_exit_bad = 5, clearly above 1.
        let mut runs = 0usize;
        let mut in_run = false;
        for &d in &outcomes {
            if d && !in_run {
                runs += 1;
            }
            in_run = d;
        }
        let mean_run = drops as f64 / runs as f64;
        assert!(mean_run > 2.5, "mean burst length {mean_run}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = LossState::new(LossModel::rate(0.3));
            let mut r = SmallRng::seed_from_u64(42);
            (0..256)
                .map(|_| s.drops(SimTime::ZERO, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
