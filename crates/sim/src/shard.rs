//! Shard state and the deterministic trace multiplexer for the parallel
//! simulator.
//!
//! The [`crate::world::World`] partitions sites (and with them hosts)
//! into shards. Each [`Shard`] owns everything its events can touch: the
//! per-shard event queue, the actors and RNG streams of its hosts, the
//! [`SiteNet`] network state and group membership of its sites, and the
//! per-entity sequence counters that generate the global event order.
//! Shards share *nothing* mutable — cross-shard sends leave through the
//! [`Shard::outbox`] as [`Mail`] and are delivered by the coordinator at
//! epoch barriers.
//!
//! # The global event key
//!
//! Every scheduled event carries a `(at, key)` pair where
//! `key = (entity << 64) | seq`: `entity` is the *pushing* entity (the
//! host whose handler pushed it, or `host_count + site` for pushes made
//! while evaluating a site's ingress), and `seq` is that entity's
//! monotone push counter. An entity's events are processed in a
//! deterministic order regardless of sharding, so its push counter — and
//! therefore every key — is a pure function of the seed. Merging all
//! queues by `(at, key)` yields one total order that is *identical* for
//! any shard count, which is the determinism guarantee the differential
//! matrix in `tests/event_queue_diff_sim.rs` pins.
//!
//! # The trace multiplexer
//!
//! Trace sinks (JSONL captures, metrics registries) observe record
//! *order*, so worker threads must not write to them directly. Sinks are
//! wrapped in a [`MuxedSink`] via `World::wrap_sink`: on a worker thread
//! (where a thread-local capture buffer is active) records are buffered
//! and tagged with the processing event's `(at, key)`; the coordinator
//! k-way merges the per-shard streams by their heads' `(at, key)` at
//! each barrier (see [`forward_merged`]) and forwards them serially —
//! reproducing byte-for-byte the order a single-shard run would have
//! produced. Off worker threads (single-shard runs, `step()`, world
//! start-up) the wrapper forwards directly, with no buffering.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::SmallRng;

use lbrm_trace::{ProtocolEvent, TraceSink, Tracer};
use lbrm_wire::{GroupId, HostId, Packet, SiteId, TtlScope};

use crate::queue::EventQueue;
use crate::stats::{BundleMeter, NetStats};
use crate::time::SimTime;
use crate::topology::SiteNet;
use crate::world::Actor;

/// A scheduled simulator event.
pub(crate) enum Ev {
    /// Final delivery of a packet to a host.
    Packet {
        from: HostId,
        to: HostId,
        packet: Packet,
    },
    /// A timer armed by (or for) a host.
    Timer { host: HostId, token: u64 },
    /// A cross-site copy arriving at `site`'s inbound tail circuit: the
    /// destination half of the split transmission evaluation.
    Ingress {
        from: HostId,
        site: SiteId,
        packet: Packet,
        kind: IngressKind,
    },
}

/// What an [`Ev::Ingress`] copy fans out to once it crosses the tail.
pub(crate) enum IngressKind {
    /// Deliver to the site's current local members of the packet's group.
    Multicast {
        /// Scope the send was made with (already applied when choosing
        /// destination sites; kept for debugging).
        #[allow(dead_code)]
        scope: TtlScope,
    },
    /// Deliver to exactly one host.
    Unicast { to: HostId },
}

/// A cross-shard event in flight: routed by the coordinator into shard
/// `shard`'s queue at the next epoch barrier.
pub(crate) struct Mail {
    pub shard: usize,
    pub at: SimTime,
    pub key: u128,
    pub ev: Ev,
}

/// One shard: a disjoint set of sites, their hosts, and everything those
/// hosts' events can touch.
pub(crate) struct Shard {
    pub idx: usize,
    pub shard_of_site: Arc<Vec<usize>>,
    pub queue: EventQueue<Ev>,
    /// Actor slots by host index (only this shard's hosts are populated).
    pub actors: Vec<Option<Box<dyn Actor>>>,
    /// Per-host RNG streams, by host index.
    pub rngs: Vec<Option<SmallRng>>,
    /// Crash flags, by host index.
    pub crashed: Vec<bool>,
    /// Partition ids, by host index — replicated *identically* on every
    /// shard. A packet delivery whose endpoints hold different ids is
    /// dropped (link-level fault injection). Because the vector is
    /// replicated and the drop test is a pure function of it, the
    /// decision is the same wherever the delivery event is processed, so
    /// sharded runs stay deterministic. Mutated only between `run_*`
    /// calls (at epoch barriers).
    pub partition: Vec<u32>,
    /// Per-site network state, by site index (only owned sites).
    pub nets: Vec<Option<SiteNet>>,
    /// Per-site group membership, by site index. Only ever mutated by
    /// this shard's own hosts (join/leave run on the member's shard), so
    /// reads at ingress time are race-free and placement-invariant.
    pub members: Vec<BTreeMap<GroupId, BTreeSet<HostId>>>,
    /// Per-entity push counters: `[0, host_count)` are hosts,
    /// `[host_count, host_count + site_count)` are site pseudo-entities.
    pub seqs: Vec<u64>,
    /// This shard's traffic accounting (merged across shards on demand).
    pub stats: NetStats,
    /// Per-host bundle-framing meters, by host index. A host's sends are
    /// processed in deterministic order on its owning shard, so each
    /// meter's fold is placement-invariant and the cross-shard merge is
    /// plain summation.
    pub meters: Vec<BundleMeter>,
    /// World-level tracer (NetPacket records), pre-wrapped by the mux.
    pub tracer: Tracer,
    /// High-water mark of this shard's queue depth.
    pub depth_max: usize,
    /// Events processed by this shard.
    pub events: u64,
    /// Virtual time of the last event this shard processed.
    pub last_at: SimTime,
    /// Wall-clock nanoseconds spent processing in the current epoch.
    pub busy_ns: u64,
    /// Cross-shard pushes made during the current window.
    pub outbox: Vec<Mail>,
    /// Trace records captured during the current window, tagged for the
    /// coordinator's head merge (in true pop/emission order).
    pub trace_buf: Vec<BufRecord>,
}

impl Shard {
    pub fn new(
        idx: usize,
        shard_of_site: Arc<Vec<usize>>,
        backend: crate::queue::QueueBackend,
        host_count: usize,
        site_count: usize,
    ) -> Shard {
        Shard {
            idx,
            shard_of_site,
            queue: EventQueue::new(backend),
            actors: (0..host_count).map(|_| None).collect(),
            rngs: (0..host_count).map(|_| None).collect(),
            crashed: vec![false; host_count],
            partition: vec![0; host_count],
            nets: (0..site_count).map(|_| None).collect(),
            members: (0..site_count).map(|_| BTreeMap::new()).collect(),
            seqs: vec![0; host_count + site_count],
            stats: NetStats::default(),
            meters: (0..host_count).map(|_| BundleMeter::default()).collect(),
            tracer: Tracer::disabled(),
            depth_max: 0,
            events: 0,
            last_at: SimTime::ZERO,
            busy_ns: 0,
            outbox: Vec::new(),
            trace_buf: Vec::new(),
        }
    }

    /// Schedules `ev` at `at` on behalf of `entity`, destined for
    /// `dst_site`'s shard: directly into the local queue when the
    /// destination is this shard, otherwise into the outbox for barrier
    /// delivery. The key `(entity << 64) | seq` makes the global event
    /// order independent of which shard pushed first.
    pub fn push_from(&mut self, entity: u64, at: SimTime, dst_site: SiteId, ev: Ev) {
        let seq = {
            let s = &mut self.seqs[entity as usize];
            *s += 1;
            *s
        };
        let key = (u128::from(entity) << 64) | u128::from(seq);
        let dst = self.shard_of_site[dst_site.raw() as usize];
        if dst == self.idx {
            self.queue.push_keyed(at, key, ev);
        } else {
            self.outbox.push(Mail {
                shard: dst,
                at,
                key,
                ev,
            });
        }
    }

    /// Records the current queue depth into the high-water mark.
    #[inline]
    pub fn note_depth(&mut self) {
        if self.queue.len() > self.depth_max {
            self.depth_max = self.queue.len();
        }
    }
}

/// One trace record buffered on a worker thread, tagged with the
/// processing event's merge key.
pub(crate) struct BufRecord {
    /// Virtual time of the event being processed when this was emitted.
    pub at: SimTime,
    /// Key of the event being processed.
    pub key: u128,
    pub at_nanos: u64,
    pub host: HostId,
    pub event: ProtocolEvent,
    /// The wrapped sink this record is destined for.
    pub sink: Arc<dyn TraceSink>,
}

thread_local! {
    /// Worker-thread capture buffer. `Some` only on shard worker
    /// threads; the coordinator/main thread never activates it, so
    /// serial emissions pass straight through the [`MuxedSink`].
    static CAPTURE: RefCell<Option<CaptureBuf>> = const { RefCell::new(None) };
}

struct CaptureBuf {
    records: Vec<BufRecord>,
}

/// Activates capture on the current thread (worker threads call this
/// once, right after spawn).
pub(crate) fn capture_activate() {
    CAPTURE.with(|c| {
        *c.borrow_mut() = Some(CaptureBuf {
            records: Vec::new(),
        });
    });
}

/// Drains the records captured while processing one event, tagging them
/// with the event's merge key. Returns an empty vec off worker threads.
pub(crate) fn capture_take(at: SimTime, key: u128) -> Vec<BufRecord> {
    CAPTURE.with(|c| {
        let mut b = c.borrow_mut();
        let Some(buf) = b.as_mut() else {
            return Vec::new();
        };
        let mut records = std::mem::take(&mut buf.records);
        for r in &mut records {
            r.at = at;
            r.key = key;
        }
        records
    })
}

/// A sink wrapper that keeps parallel runs byte-identical to serial
/// ones: on worker threads records are buffered for the coordinator's
/// deterministic head merge; everywhere else they forward straight to
/// the wrapped sink.
pub(crate) struct MuxedSink {
    inner: Arc<dyn TraceSink>,
}

impl MuxedSink {
    pub fn wrap(inner: Arc<dyn TraceSink>) -> Arc<dyn TraceSink> {
        Arc::new(MuxedSink { inner })
    }
}

impl TraceSink for MuxedSink {
    fn record(&self, at_nanos: u64, host: HostId, event: &ProtocolEvent) {
        let buffered = CAPTURE.with(|c| {
            let mut b = c.borrow_mut();
            let Some(buf) = b.as_mut() else {
                return false;
            };
            buf.records.push(BufRecord {
                at: SimTime::ZERO,
                key: 0,
                at_nanos,
                host,
                event: event.clone(),
                sink: self.inner.clone(),
            });
            true
        });
        if !buffered {
            self.inner.record(at_nanos, host, event);
        }
    }
}

/// Merges per-shard capture streams into the serial emission order and
/// forwards them. Called by the coordinator between epochs (and at run
/// end).
///
/// This must be a *k-way head merge*, not a global sort: within one
/// shard the capture stream is already in true pop order, and that order
/// is not monotone in `(at, key)` — an event can arm a timer at the
/// *current* instant, which pops right after it despite a smaller key.
/// A serial run interleaves shards by picking the globally least
/// `(at, key)` among the queue *heads* at each step; since same-instant
/// follow-up events always land on the generating event's own shard
/// (cross-shard events are at least a lookahead away), comparing stream
/// heads reproduces exactly that order.
pub(crate) fn forward_merged(streams: Vec<Vec<BufRecord>>) {
    let mut streams: Vec<std::iter::Peekable<std::vec::IntoIter<BufRecord>>> = streams
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    loop {
        let mut best: Option<(SimTime, u128, usize)> = None;
        for (i, s) in streams.iter_mut().enumerate() {
            if let Some(h) = s.peek() {
                if best.is_none_or(|(at, key, _)| (h.at, h.key) < (at, key)) {
                    best = Some((h.at, h.key, i));
                }
            }
        }
        let Some((_, _, i)) = best else { break };
        let r = streams[i].next().expect("peeked head");
        r.sink.record(r.at_nanos, r.host, &r.event);
    }
}
