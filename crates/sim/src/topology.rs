//! Sites, hosts, and the Figure-1 tail-circuit topology.
//!
//! The model follows the paper's WAN picture: every host sits on a site
//! LAN; each site connects to the backbone through a *tail circuit* with
//! its own propagation delay, optional bandwidth (FIFO queueing), and
//! independent inbound/outbound loss; the backbone adds a per-site WAN
//! distance. A packet between two sites therefore crosses
//! `LAN → tail-out → WAN → tail-in → LAN`, and each crossing is evaluated
//! against that segment's loss model *once per physical copy* — so a drop
//! on a site's inbound tail circuit loses the packet for the whole site,
//! exactly the correlated-loss pattern distributed logging exploits.
//!
//! # Split evaluation
//!
//! [`Topology`] itself is immutable after [`TopologyBuilder::build`];
//! all mutable per-site network state (loss-model chains, tail-circuit
//! queue occupancy, the site's RNG stream) lives in one [`SiteNet`] per
//! site. A cross-site transmission is evaluated in two halves:
//!
//! * **source side**, against the sender site's [`SiteNet`]: the sender
//!   LAN crossing, the outbound tail circuit ([`Topology::egress`]), and
//!   one WAN-branch loss draw per destination site
//!   ([`Topology::wan_drop`]);
//! * **destination side**, against the receiver site's [`SiteNet`] at
//!   the moment the copy reaches that site's tail circuit: the inbound
//!   tail crossing ([`Topology::ingress_tail`]) and the per-member LAN
//!   crossings ([`Topology::lan_delivery`]).
//!
//! The halves touch disjoint [`SiteNet`]s, which is what lets the
//! sharded [`crate::world::World`] evaluate them on different shards —
//! and because every draw charges the *site's own* RNG stream, the
//! realized loss/jitter pattern is invariant to how sites are grouped
//! into shards.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::Rng;

use lbrm_wire::{HostId, SiteId, TtlScope};

use crate::loss::{LossModel, LossState};
use crate::stats::{NetStats, SegmentClass};
use crate::time::SimTime;

/// Configuration for one site.
#[derive(Debug, Clone)]
pub struct SiteParams {
    /// One-way delay across the site LAN.
    pub lan_delay: Duration,
    /// One-way propagation delay of the tail circuit.
    pub tail_delay: Duration,
    /// One-way delay from this site's tail circuit to the backbone core;
    /// the WAN delay between two sites is the sum of their `wan_delay`s.
    pub wan_delay: Duration,
    /// Administrative region, used by [`TtlScope::Region`] multicast.
    pub region: u32,
    /// Tail-circuit bandwidth in bits/s (`None` = unconstrained). Applies
    /// independently to each direction.
    pub tail_bandwidth_bps: Option<u64>,
    /// Random extra delay, uniform in `[0, jitter]`, applied per
    /// delivered copy. Nonzero jitter reorders packets — the condition
    /// the receivers' NACK delay exists to tolerate.
    pub jitter: Duration,
    /// Loss on the LAN (evaluated per receiving host).
    pub lan_loss: LossModel,
    /// Loss on the inbound tail circuit (evaluated once per site copy).
    pub tail_in_loss: LossModel,
    /// Loss on the outbound tail circuit (evaluated once per send).
    pub tail_out_loss: LossModel,
}

impl Default for SiteParams {
    fn default() -> Self {
        SiteParams {
            lan_delay: Duration::from_micros(500),
            tail_delay: Duration::from_millis(2),
            wan_delay: Duration::from_millis(20),
            region: 0,
            tail_bandwidth_bps: None,
            jitter: Duration::ZERO,
            lan_loss: LossModel::None,
            tail_in_loss: LossModel::None,
            tail_out_loss: LossModel::None,
        }
    }
}

impl SiteParams {
    /// A nearby site: small WAN distance (a few ms RTT to peers), as in
    /// the paper's "secondary logging server a few miles away".
    pub fn nearby() -> SiteParams {
        SiteParams {
            wan_delay: Duration::from_millis(1),
            ..SiteParams::default()
        }
    }

    /// A distant site: ~40 ms one-way to the core, giving the paper's
    /// "primary logging server 1,500 miles away … 80 ms RTT".
    pub fn distant() -> SiteParams {
        SiteParams {
            wan_delay: Duration::from_millis(19),
            ..SiteParams::default()
        }
    }
}

/// Mutable network state of one site: loss-model chains, tail-circuit
/// FIFO occupancy, backlog high-water marks, and the site's RNG stream.
///
/// Every random draw a site's traffic makes — LAN/tail loss, WAN-branch
/// loss for copies *originating* here, jitter — charges this struct, so
/// a shard owning the site owns all of its randomness.
pub struct SiteNet {
    lan_loss: LossState,
    tail_in_loss: LossState,
    tail_out_loss: LossState,
    /// Backbone loss chain for WAN branches originating at this site.
    wan_loss: LossState,
    tail_in_busy_until: SimTime,
    tail_out_busy_until: SimTime,
    pub(crate) tail_in_backlog_max: Duration,
    pub(crate) tail_out_backlog_max: Duration,
    rng: SmallRng,
}

impl SiteNet {
    /// Fresh state for one site. `rng` must be derived purely from the
    /// world seed and the site id so the stream is placement-invariant.
    pub fn new(params: &SiteParams, wan_loss: &LossModel, rng: SmallRng) -> SiteNet {
        SiteNet {
            lan_loss: LossState::new(params.lan_loss.clone()),
            tail_in_loss: LossState::new(params.tail_in_loss.clone()),
            tail_out_loss: LossState::new(params.tail_out_loss.clone()),
            wan_loss: LossState::new(wan_loss.clone()),
            tail_in_busy_until: SimTime::ZERO,
            tail_out_busy_until: SimTime::ZERO,
            tail_in_backlog_max: Duration::ZERO,
            tail_out_backlog_max: Duration::ZERO,
            rng,
        }
    }
}

/// Where to deliver a surviving copy, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving host.
    pub to: HostId,
    /// Arrival time.
    pub at: SimTime,
}

/// Builds a [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    sites: Vec<SiteParams>,
    hosts: Vec<SiteId>,
    wan_loss: LossModel,
}

impl TopologyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            sites: Vec::new(),
            hosts: Vec::new(),
            wan_loss: LossModel::None,
        }
    }

    /// Adds a site, returning its id.
    pub fn site(&mut self, params: SiteParams) -> SiteId {
        self.sites.push(params);
        SiteId(self.sites.len() as u32 - 1)
    }

    /// Adds a host to `site`, returning its id.
    ///
    /// # Panics
    ///
    /// If `site` was not created by this builder.
    pub fn host(&mut self, site: SiteId) -> HostId {
        assert!(
            (site.raw() as usize) < self.sites.len(),
            "unknown site {site}"
        );
        self.hosts.push(site);
        HostId(self.hosts.len() as u64 - 1)
    }

    /// Adds `n` hosts to `site`.
    pub fn hosts(&mut self, site: SiteId, n: usize) -> Vec<HostId> {
        (0..n).map(|_| self.host(site)).collect()
    }

    /// Sets the backbone loss model (evaluated once per destination-site
    /// branch of a multicast, or once per unicast).
    pub fn wan_loss(&mut self, model: LossModel) -> &mut Self {
        self.wan_loss = model;
        self
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        Topology {
            sites: self.sites,
            hosts: self.hosts,
            wan_loss: self.wan_loss,
        }
    }
}

/// The built network description: sites, their parameters, and host
/// placement. Immutable — all mutable state lives in [`SiteNet`]s.
pub struct Topology {
    sites: Vec<SiteParams>,
    hosts: Vec<SiteId>,
    wan_loss: LossModel,
}

impl Topology {
    /// The site a host belongs to.
    ///
    /// # Panics
    ///
    /// If the host does not exist.
    pub fn site_of(&self, host: HostId) -> SiteId {
        self.hosts[host.raw() as usize]
    }

    /// The region of a site.
    pub fn region_of(&self, site: SiteId) -> u32 {
        self.sites[site.raw() as usize].region
    }

    /// Parameters of a site.
    pub fn site_params(&self, site: SiteId) -> &SiteParams {
        &self.sites[site.raw() as usize]
    }

    /// The backbone loss model (template for per-site WAN chains).
    pub fn wan_loss_model(&self) -> &LossModel {
        &self.wan_loss
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// One-way unicast latency between two hosts, ignoring loss and
    /// queueing — useful for computing expected RTTs in experiments.
    pub fn base_latency(&self, from: HostId, to: HostId) -> Duration {
        let fs = self.site_of(from);
        let ts = self.site_of(to);
        if from == to {
            return Duration::from_micros(10);
        }
        let f = &self.sites[fs.raw() as usize];
        if fs == ts {
            return f.lan_delay;
        }
        let t = &self.sites[ts.raw() as usize];
        f.lan_delay + f.tail_delay + f.wan_delay + t.wan_delay + t.tail_delay + t.lan_delay
    }

    /// `true` iff `to` is within `scope` of `from`.
    pub fn in_scope(&self, from: HostId, to: HostId, scope: TtlScope) -> bool {
        match scope {
            TtlScope::Site => self.site_of(from) == self.site_of(to),
            TtlScope::Region => {
                self.region_of(self.site_of(from)) == self.region_of(self.site_of(to))
            }
            TtlScope::Global => true,
        }
    }

    /// `true` iff `dst` is reachable from `src` under `scope` (site
    /// scope never crosses the WAN; region scope needs matching regions).
    pub fn site_in_scope(&self, src: SiteId, dst: SiteId, scope: TtlScope) -> bool {
        match scope {
            TtlScope::Site => src == dst,
            TtlScope::Region => self.region_of(src) == self.region_of(dst),
            TtlScope::Global => true,
        }
    }

    /// The conservative-synchronization lookahead for a site→shard
    /// assignment: the minimum latency any event can cross between two
    /// *different* shards, i.e. `min over cross-shard ordered site pairs
    /// (a, b)` of `lan_a + tail_a + wan_a + wan_b` (the floor of the
    /// source LAN, source tail, and backbone legs — tail-circuit
    /// serialization and the destination tail/LAN only add to it).
    /// `None` when no pair crosses shards (≤ 1 shard in use).
    ///
    /// A zero lookahead (some site with zero LAN, tail, and WAN delay)
    /// means shards cannot advance independently at all; callers must
    /// fall back to a single shard.
    pub fn lookahead(&self, shard_of_site: &[usize]) -> Option<Duration> {
        let mut best: Option<Duration> = None;
        for (a, pa) in self.sites.iter().enumerate() {
            let src = pa.lan_delay + pa.tail_delay + pa.wan_delay;
            for (b, pb) in self.sites.iter().enumerate() {
                if shard_of_site[a] == shard_of_site[b] {
                    continue;
                }
                let _ = b;
                let l = src + pb.wan_delay;
                if best.is_none_or(|cur| l < cur) {
                    best = Some(l);
                }
            }
        }
        best
    }

    /// Sum of the two sites' backbone legs.
    pub fn wan_latency(&self, from: SiteId, to: SiteId) -> Duration {
        self.sites[from.raw() as usize].wan_delay + self.sites[to.raw() as usize].wan_delay
    }

    /// Per-copy random extra delay at the destination site.
    fn jitter_of(params: &SiteParams, rng: &mut SmallRng) -> Duration {
        let j = params.jitter;
        if j.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_nanos(rng.random_range(0..=j.as_nanos() as u64))
        }
    }

    fn serialize_on_tail(
        params: &SiteParams,
        net: &mut SiteNet,
        outbound: bool,
        now: SimTime,
        bytes: usize,
    ) -> Duration {
        let Some(bw) = params.tail_bandwidth_bps else {
            return Duration::ZERO;
        };
        let tx = Duration::from_secs_f64(bytes as f64 * 8.0 / bw as f64);
        let (busy, backlog_max) = if outbound {
            (&mut net.tail_out_busy_until, &mut net.tail_out_backlog_max)
        } else {
            (&mut net.tail_in_busy_until, &mut net.tail_in_backlog_max)
        };
        let start = (*busy).max(now);
        let finish = start + tx;
        *busy = finish;
        let queued = finish - now;
        if queued > *backlog_max {
            // High-water mark for the per-link queue gauges; two
            // compares keep the send path allocation-free.
            *backlog_max = queued;
        }
        queued
    }

    /// A host's loopback delivery to itself (no network crossed).
    pub fn self_delivery(now: SimTime, to: HostId) -> Delivery {
        Delivery {
            to,
            at: now + Duration::from_micros(10),
        }
    }

    /// One LAN crossing to `to` at `site`: a per-copy loss draw, the LAN
    /// delay, and a jitter draw if carried. This is both the same-site
    /// delivery leg and the final leg of a cross-site transmission.
    ///
    /// The argument list mirrors the split shard state (`net`, `stats`
    /// are per-shard slices the caller already borrowed apart); bundling
    /// them into a struct would just move the borrow split around.
    #[allow(clippy::too_many_arguments)]
    pub fn lan_delivery(
        &self,
        site: SiteId,
        net: &mut SiteNet,
        now: SimTime,
        to: HostId,
        kind: &'static str,
        bytes: usize,
        stats: &mut NetStats,
    ) -> Option<Delivery> {
        let params = &self.sites[site.raw() as usize];
        let dropped = net.lan_loss.drops(now, &mut net.rng);
        stats.record(SegmentClass::Lan, Some(site), kind, bytes, dropped);
        if dropped {
            return None;
        }
        let at = now + params.lan_delay + Self::jitter_of(params, &mut net.rng);
        Some(Delivery { to, at })
    }

    /// Source half of a cross-site transmission: one copy crosses the
    /// sender's LAN and outbound tail circuit. Returns the time the copy
    /// reaches the backbone edge of the source site (WAN legs not yet
    /// added), or `None` if either crossing dropped it — which loses the
    /// packet for *every* remote destination.
    pub fn egress(
        &self,
        site: SiteId,
        net: &mut SiteNet,
        now: SimTime,
        kind: &'static str,
        bytes: usize,
        stats: &mut NetStats,
    ) -> Option<SimTime> {
        let params = &self.sites[site.raw() as usize];
        let lan_dropped = net.lan_loss.drops(now, &mut net.rng);
        stats.record(SegmentClass::Lan, Some(site), kind, bytes, lan_dropped);
        if lan_dropped {
            return None;
        }
        let mut at = now + params.lan_delay + params.tail_delay;
        at += Self::serialize_on_tail(params, net, true, now, bytes);
        let tail_dropped = net.tail_out_loss.drops(now, &mut net.rng);
        stats.record(SegmentClass::TailOut, Some(site), kind, bytes, tail_dropped);
        if tail_dropped {
            return None;
        }
        Some(at)
    }

    /// One WAN-branch loss draw on the *source* site's backbone chain
    /// (loss "high in the distribution tree" would be modelled by
    /// tail-out; per-branch loss models independent backbone branches).
    /// Returns `true` if the branch dropped. The caller records the
    /// branch stats (carried copies are counted once per send, drops per
    /// branch, matching multicast economy).
    pub fn wan_drop(&self, net_src: &mut SiteNet, now: SimTime) -> bool {
        net_src.wan_loss.drops(now, &mut net_src.rng)
    }

    /// Destination half, tail leg: the copy arrives at `site`'s inbound
    /// tail circuit at `now` and crosses it — one correlated loss draw
    /// for the whole site, FIFO serialization measured from arrival.
    /// Returns the time the copy enters the site LAN, or `None` on drop.
    pub fn ingress_tail(
        &self,
        site: SiteId,
        net: &mut SiteNet,
        now: SimTime,
        kind: &'static str,
        bytes: usize,
        stats: &mut NetStats,
    ) -> Option<SimTime> {
        let params = &self.sites[site.raw() as usize];
        let mut at = now + params.tail_delay;
        at += Self::serialize_on_tail(params, net, false, now, bytes);
        let dropped = net.tail_in_loss.drops(now, &mut net.rng);
        stats.record(SegmentClass::TailIn, Some(site), kind, bytes, dropped);
        if dropped {
            return None;
        }
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use rand::SeedableRng;

    fn net_for(t: &Topology, site: SiteId, seed: u64) -> SiteNet {
        SiteNet::new(
            t.site_params(site),
            t.wan_loss_model(),
            SmallRng::seed_from_u64(seed),
        )
    }

    /// Full cross-site unicast through the split pieces, in evaluation
    /// order: egress at the source, WAN legs, ingress at the destination,
    /// final LAN delivery.
    #[allow(clippy::too_many_arguments)]
    fn unicast_split(
        t: &Topology,
        src_net: &mut SiteNet,
        dst_net: &mut SiteNet,
        now: SimTime,
        from: HostId,
        to: HostId,
        kind: &'static str,
        bytes: usize,
        stats: &mut NetStats,
    ) -> Option<Delivery> {
        let fs = t.site_of(from);
        let ts = t.site_of(to);
        assert_ne!(fs, ts, "use lan_delivery for same-site sends");
        let out = t.egress(fs, src_net, now, kind, bytes, stats)?;
        let dropped = t.wan_drop(src_net, now);
        stats.record(SegmentClass::Wan, None, kind, bytes, dropped);
        if dropped {
            return None;
        }
        let t_in = out + t.wan_latency(fs, ts);
        let t_lan = t.ingress_tail(ts, dst_net, t_in, kind, bytes, stats)?;
        t.lan_delivery(ts, dst_net, t_lan, to, kind, bytes, stats)
    }

    fn two_site_topo() -> (Topology, HostId, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let a = b.host(s0);
        let a2 = b.host(s0);
        let c = b.host(s1);
        (b.build(), a, a2, c)
    }

    #[test]
    fn base_latency_components() {
        let (t, a, a2, c) = two_site_topo();
        // Same site: one LAN delay.
        assert_eq!(t.base_latency(a, a2), Duration::from_micros(500));
        // Cross-site: lan + tail + wan*2 + tail + lan.
        let expect = Duration::from_micros(500)
            + Duration::from_millis(2)
            + Duration::from_millis(40)
            + Duration::from_millis(2)
            + Duration::from_micros(500);
        assert_eq!(t.base_latency(a, c), expect);
        // Symmetric.
        assert_eq!(t.base_latency(c, a), expect);
    }

    #[test]
    fn split_unicast_lossless_delivers_on_time() {
        let (t, a, _, c) = two_site_topo();
        let mut src = net_for(&t, t.site_of(a), 1);
        let mut dst = net_for(&t, t.site_of(c), 2);
        let mut stats = NetStats::default();
        let d = unicast_split(
            &t,
            &mut src,
            &mut dst,
            SimTime::ZERO,
            a,
            c,
            "data",
            100,
            &mut stats,
        )
        .unwrap();
        assert_eq!(d.to, c);
        assert_eq!(d.at.since(SimTime::ZERO), t.base_latency(a, c));
        assert_eq!(stats.class_kind(SegmentClass::Wan, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::TailOut, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::TailIn, "data").carried, 1);
    }

    #[test]
    fn tail_in_outage_drops_whole_site() {
        // A copy arriving during the destination site's inbound outage
        // must be lost for every member of that site in one correlated
        // draw.
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams {
            tail_in_loss: LossModel::outage(SimTime::ZERO, Duration::from_secs(100)),
            ..SiteParams::default()
        });
        let _sender = b.host(s0);
        let remote = b.hosts(s1, 5);
        let t = b.build();
        let mut dst = net_for(&t, s1, 3);
        let mut stats = NetStats::default();

        // The copy reaches the tail during the outage: one drop, no LAN
        // deliveries possible.
        let crossed = t.ingress_tail(
            s1,
            &mut dst,
            SimTime::from_millis(40),
            "data",
            64,
            &mut stats,
        );
        assert!(crossed.is_none(), "whole site loses the copy");
        assert_eq!(
            stats
                .site_tail(SiteId(1), SegmentClass::TailIn, "data")
                .dropped,
            1
        );
        // No per-member LAN records were ever drawn.
        assert_eq!(stats.class_total(SegmentClass::Lan).carried, 0);
        let _ = remote;
    }

    #[test]
    fn ingress_fans_out_to_members() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let members = b.hosts(s0, 4);
        let t = b.build();
        let mut net = net_for(&t, s0, 4);
        let mut stats = NetStats::default();
        let t_in = SimTime::from_millis(25);
        let t_lan = t
            .ingress_tail(s0, &mut net, t_in, "data", 64, &mut stats)
            .unwrap();
        assert_eq!(t_lan, t_in + Duration::from_millis(2));
        let deliveries: Vec<Delivery> = members
            .iter()
            .filter_map(|&m| t.lan_delivery(s0, &mut net, t_lan, m, "data", 64, &mut stats))
            .collect();
        assert_eq!(deliveries.len(), 4);
        for d in &deliveries {
            assert_eq!(d.at, t_lan + Duration::from_micros(500));
        }
        assert_eq!(stats.class_kind(SegmentClass::TailIn, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::Lan, "data").carried, 4);
    }

    #[test]
    fn scopes_confine_sites() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams {
            region: 1,
            ..SiteParams::default()
        });
        let s1 = b.site(SiteParams {
            region: 1,
            ..SiteParams::default()
        });
        let s2 = b.site(SiteParams {
            region: 2,
            ..SiteParams::default()
        });
        let sender = b.host(s0);
        let same_region = b.host(s1);
        let other_region = b.host(s2);
        let t = b.build();
        assert!(t.site_in_scope(s0, s0, TtlScope::Site));
        assert!(!t.site_in_scope(s0, s1, TtlScope::Site));
        assert!(t.site_in_scope(s0, s1, TtlScope::Region));
        assert!(!t.site_in_scope(s0, s2, TtlScope::Region));
        assert!(t.site_in_scope(s0, s2, TtlScope::Global));
        assert!(t.in_scope(sender, same_region, TtlScope::Region));
        assert!(!t.in_scope(sender, other_region, TtlScope::Region));
    }

    #[test]
    fn bandwidth_queueing_serializes() {
        // Two back-to-back egresses over a slow tail circuit: the second
        // must queue behind the first.
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams {
            tail_bandwidth_bps: Some(8_000), // 1 byte/ms
            ..SiteParams::default()
        });
        let t = b.build();
        let mut net = net_for(&t, s0, 6);
        let mut stats = NetStats::default();
        let o1 = t
            .egress(s0, &mut net, SimTime::ZERO, "data", 1000, &mut stats)
            .unwrap();
        let o2 = t
            .egress(s0, &mut net, SimTime::ZERO, "data", 1000, &mut stats)
            .unwrap();
        // 1000 bytes at 1 byte/ms = 1 s serialization each.
        assert_eq!(o2 - o1, Duration::from_secs(1));
        assert_eq!(net.tail_out_backlog_max, Duration::from_secs(2));
    }

    #[test]
    fn self_send_is_cheap() {
        let (t, a, _, _) = two_site_topo();
        let d = Topology::self_delivery(SimTime::ZERO, a);
        assert_eq!(d.to, a);
        assert!(d.at.since(SimTime::ZERO) < Duration::from_millis(1));
        let _ = t;
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn builder_rejects_unknown_site() {
        let mut b = TopologyBuilder::new();
        b.host(SiteId(3));
    }

    #[test]
    fn jitter_varies_and_can_reorder_deliveries() {
        let mut b = TopologyBuilder::new();
        let s1 = b.site(SiteParams {
            jitter: Duration::from_millis(20),
            ..SiteParams::default()
        });
        let c = b.host(s1);
        let t = b.build();
        let mut net = net_for(&t, s1, 9);
        let mut stats = NetStats::default();
        let mut arrivals = Vec::new();
        for i in 0..50u64 {
            let now = SimTime::from_millis(i);
            let d = t
                .lan_delivery(s1, &mut net, now, c, "data", 64, &mut stats)
                .unwrap();
            let extra = d.at.since(now).saturating_sub(Duration::from_micros(500));
            assert!(
                extra <= Duration::from_millis(20),
                "jitter bound violated: {extra:?}"
            );
            arrivals.push(d.at);
        }
        // Jitter actually varies...
        let distinct: std::collections::BTreeSet<_> =
            arrivals.iter().map(|t| t.nanos() % 1_000_000_000).collect();
        assert!(distinct.len() > 10);
        // ...and with 1 ms spacing vs 20 ms jitter, reordering occurs.
        let reordered = arrivals.windows(2).any(|w| w[1] < w[0]);
        assert!(reordered, "expected at least one inversion");
    }

    #[test]
    fn lookahead_is_min_cross_shard_latency() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default()); // 0.5 + 2 + 20 ms out
        let s1 = b.site(SiteParams::nearby()); // wan 1 ms
        let s2 = b.site(SiteParams::distant()); // wan 19 ms
        let t = b.build();
        let _ = (s0, s1, s2);

        // All sites in one shard: nothing crosses.
        assert_eq!(t.lookahead(&[0, 0, 0]), None);

        // s1 alone in shard 1: the cheapest crossing is s1 → s1? No —
        // crossings are between different shards, so the floor is the
        // cheapest of s1→{s0,s2} and {s0,s2}→s1:
        //   s1 out: 0.5 + 2 + 1 = 3.5 ms, plus min(wan of s0, s2) = 19 ms.
        //   s0/s2 out: min(22.5, 21.5) = 21.5 ms, plus wan_1 = 1 ms.
        let l = t.lookahead(&[0, 1, 0]).unwrap();
        assert_eq!(
            l,
            Duration::from_micros(500) + Duration::from_millis(2 + 19 + 1)
        );

        // One shard per site: same floor (it already crossed shards).
        assert_eq!(t.lookahead(&[0, 1, 2]), Some(l));
    }

    #[test]
    fn wan_branch_drop_draws_on_source_chain() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        b.wan_loss(LossModel::rate(1.0));
        let t = b.build();
        let mut net = net_for(&t, s0, 11);
        assert!(t.wan_drop(&mut net, SimTime::ZERO), "p=1 must drop");
    }
}
