//! Sites, hosts, and the Figure-1 tail-circuit topology.
//!
//! The model follows the paper's WAN picture: every host sits on a site
//! LAN; each site connects to the backbone through a *tail circuit* with
//! its own propagation delay, optional bandwidth (FIFO queueing), and
//! independent inbound/outbound loss; the backbone adds a per-site WAN
//! distance. A packet between two sites therefore crosses
//! `LAN → tail-out → WAN → tail-in → LAN`, and each crossing is evaluated
//! against that segment's loss model *once per physical copy* — so a drop
//! on a site's inbound tail circuit loses the packet for the whole site,
//! exactly the correlated-loss pattern distributed logging exploits.

use std::collections::HashMap;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::Rng;

use lbrm_wire::{HostId, SiteId, TtlScope};

use crate::loss::{LossModel, LossState};
use crate::stats::{NetStats, SegmentClass};
use crate::time::SimTime;

/// Configuration for one site.
#[derive(Debug, Clone)]
pub struct SiteParams {
    /// One-way delay across the site LAN.
    pub lan_delay: Duration,
    /// One-way propagation delay of the tail circuit.
    pub tail_delay: Duration,
    /// One-way delay from this site's tail circuit to the backbone core;
    /// the WAN delay between two sites is the sum of their `wan_delay`s.
    pub wan_delay: Duration,
    /// Administrative region, used by [`TtlScope::Region`] multicast.
    pub region: u32,
    /// Tail-circuit bandwidth in bits/s (`None` = unconstrained). Applies
    /// independently to each direction.
    pub tail_bandwidth_bps: Option<u64>,
    /// Random extra delay, uniform in `[0, jitter]`, applied per
    /// delivered copy. Nonzero jitter reorders packets — the condition
    /// the receivers' NACK delay exists to tolerate.
    pub jitter: Duration,
    /// Loss on the LAN (evaluated per receiving host).
    pub lan_loss: LossModel,
    /// Loss on the inbound tail circuit (evaluated once per site copy).
    pub tail_in_loss: LossModel,
    /// Loss on the outbound tail circuit (evaluated once per send).
    pub tail_out_loss: LossModel,
}

impl Default for SiteParams {
    fn default() -> Self {
        SiteParams {
            lan_delay: Duration::from_micros(500),
            tail_delay: Duration::from_millis(2),
            wan_delay: Duration::from_millis(20),
            region: 0,
            tail_bandwidth_bps: None,
            jitter: Duration::ZERO,
            lan_loss: LossModel::None,
            tail_in_loss: LossModel::None,
            tail_out_loss: LossModel::None,
        }
    }
}

impl SiteParams {
    /// A nearby site: small WAN distance (a few ms RTT to peers), as in
    /// the paper's "secondary logging server a few miles away".
    pub fn nearby() -> SiteParams {
        SiteParams {
            wan_delay: Duration::from_millis(1),
            ..SiteParams::default()
        }
    }

    /// A distant site: ~40 ms one-way to the core, giving the paper's
    /// "primary logging server 1,500 miles away … 80 ms RTT".
    pub fn distant() -> SiteParams {
        SiteParams {
            wan_delay: Duration::from_millis(19),
            ..SiteParams::default()
        }
    }
}

struct Site {
    params: SiteParams,
    lan_loss: LossState,
    tail_in_loss: LossState,
    tail_out_loss: LossState,
    tail_in_busy_until: SimTime,
    tail_out_busy_until: SimTime,
    tail_in_backlog_max: Duration,
    tail_out_backlog_max: Duration,
}

/// Where to deliver a surviving copy, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving host.
    pub to: HostId,
    /// Arrival time.
    pub at: SimTime,
}

/// Builds a [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    sites: Vec<SiteParams>,
    hosts: Vec<SiteId>,
    wan_loss: LossModel,
}

impl TopologyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            sites: Vec::new(),
            hosts: Vec::new(),
            wan_loss: LossModel::None,
        }
    }

    /// Adds a site, returning its id.
    pub fn site(&mut self, params: SiteParams) -> SiteId {
        self.sites.push(params);
        SiteId(self.sites.len() as u32 - 1)
    }

    /// Adds a host to `site`, returning its id.
    ///
    /// # Panics
    ///
    /// If `site` was not created by this builder.
    pub fn host(&mut self, site: SiteId) -> HostId {
        assert!(
            (site.raw() as usize) < self.sites.len(),
            "unknown site {site}"
        );
        self.hosts.push(site);
        HostId(self.hosts.len() as u64 - 1)
    }

    /// Adds `n` hosts to `site`.
    pub fn hosts(&mut self, site: SiteId, n: usize) -> Vec<HostId> {
        (0..n).map(|_| self.host(site)).collect()
    }

    /// Sets the backbone loss model (evaluated once per destination-site
    /// branch of a multicast, or once per unicast).
    pub fn wan_loss(&mut self, model: LossModel) -> &mut Self {
        self.wan_loss = model;
        self
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        Topology {
            sites: self
                .sites
                .into_iter()
                .map(|params| Site {
                    lan_loss: LossState::new(params.lan_loss.clone()),
                    tail_in_loss: LossState::new(params.tail_in_loss.clone()),
                    tail_out_loss: LossState::new(params.tail_out_loss.clone()),
                    tail_in_busy_until: SimTime::ZERO,
                    tail_out_busy_until: SimTime::ZERO,
                    tail_in_backlog_max: Duration::ZERO,
                    tail_out_backlog_max: Duration::ZERO,
                    params,
                })
                .collect(),
            hosts: self.hosts,
            wan_loss: LossState::new(self.wan_loss),
        }
    }
}

/// The built network: sites, hosts, loss state, and queueing state.
pub struct Topology {
    sites: Vec<Site>,
    hosts: Vec<SiteId>,
    wan_loss: LossState,
}

impl Topology {
    /// The site a host belongs to.
    ///
    /// # Panics
    ///
    /// If the host does not exist.
    pub fn site_of(&self, host: HostId) -> SiteId {
        self.hosts[host.raw() as usize]
    }

    /// The region of a site.
    pub fn region_of(&self, site: SiteId) -> u32 {
        self.sites[site.raw() as usize].params.region
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// One-way unicast latency between two hosts, ignoring loss and
    /// queueing — useful for computing expected RTTs in experiments.
    pub fn base_latency(&self, from: HostId, to: HostId) -> Duration {
        let fs = self.site_of(from);
        let ts = self.site_of(to);
        if from == to {
            return Duration::from_micros(10);
        }
        let f = &self.sites[fs.raw() as usize].params;
        if fs == ts {
            return f.lan_delay;
        }
        let t = &self.sites[ts.raw() as usize].params;
        f.lan_delay + f.tail_delay + f.wan_delay + t.wan_delay + t.tail_delay + t.lan_delay
    }

    /// `true` iff `to` is within `scope` of `from`.
    pub fn in_scope(&self, from: HostId, to: HostId, scope: TtlScope) -> bool {
        match scope {
            TtlScope::Site => self.site_of(from) == self.site_of(to),
            TtlScope::Region => {
                self.region_of(self.site_of(from)) == self.region_of(self.site_of(to))
            }
            TtlScope::Global => true,
        }
    }

    /// Per-copy random extra delay at the destination site.
    fn jitter_of(site: &Site, rng: &mut SmallRng) -> Duration {
        let j = site.params.jitter;
        if j.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_nanos(rng.random_range(0..=j.as_nanos() as u64))
        }
    }

    fn serialize_on_tail(site: &mut Site, outbound: bool, now: SimTime, bytes: usize) -> Duration {
        let Some(bw) = site.params.tail_bandwidth_bps else {
            return Duration::ZERO;
        };
        let tx = Duration::from_secs_f64(bytes as f64 * 8.0 / bw as f64);
        let (busy, backlog_max) = if outbound {
            (
                &mut site.tail_out_busy_until,
                &mut site.tail_out_backlog_max,
            )
        } else {
            (&mut site.tail_in_busy_until, &mut site.tail_in_backlog_max)
        };
        let start = (*busy).max(now);
        let finish = start + tx;
        *busy = finish;
        let queued = finish - now;
        if queued > *backlog_max {
            // High-water mark for the per-link queue gauges; two
            // compares keep the send path allocation-free.
            *backlog_max = queued;
        }
        queued
    }

    /// Per-site high-water tail-circuit backlogs `(site, inbound,
    /// outbound)` — the per-link queue gauges the sim world surfaces
    /// through its metrics registry. Zero everywhere when tail
    /// bandwidth is unlimited.
    pub fn tail_backlog_maxima(&self) -> Vec<(SiteId, Duration, Duration)> {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    SiteId(i as u32),
                    s.tail_in_backlog_max,
                    s.tail_out_backlog_max,
                )
            })
            .collect()
    }

    /// Sends one unicast copy, returning the delivery if it survives all
    /// segments. Records stats per crossing.
    #[allow(clippy::too_many_arguments)]
    pub fn unicast(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        kind: &'static str,
        bytes: usize,
        rng: &mut SmallRng,
        stats: &mut NetStats,
    ) -> Option<Delivery> {
        if from == to {
            return Some(Delivery {
                to,
                at: now + Duration::from_micros(10),
            });
        }
        let fs = self.site_of(from);
        let ts = self.site_of(to);
        let mut at = now;

        if fs == ts {
            let site = &mut self.sites[fs.raw() as usize];
            at += site.params.lan_delay;
            let dropped = site.lan_loss.drops(now, rng);
            stats.record(SegmentClass::Lan, Some(fs), kind, bytes, dropped);
            if dropped {
                return None;
            }
            at += Self::jitter_of(site, rng);
            return Some(Delivery { to, at });
        }

        // LAN out (sender side).
        {
            let site = &mut self.sites[fs.raw() as usize];
            at += site.params.lan_delay;
            let dropped = site.lan_loss.drops(now, rng);
            stats.record(SegmentClass::Lan, Some(fs), kind, bytes, dropped);
            if dropped {
                return None;
            }
        }
        // Tail out.
        {
            let site = &mut self.sites[fs.raw() as usize];
            at += site.params.tail_delay + Self::serialize_on_tail(site, true, now, bytes);
            let dropped = site.tail_out_loss.drops(now, rng);
            stats.record(SegmentClass::TailOut, Some(fs), kind, bytes, dropped);
            if dropped {
                return None;
            }
        }
        // WAN.
        {
            at += self.sites[fs.raw() as usize].params.wan_delay
                + self.sites[ts.raw() as usize].params.wan_delay;
            let dropped = self.wan_loss.drops(now, rng);
            stats.record(SegmentClass::Wan, None, kind, bytes, dropped);
            if dropped {
                return None;
            }
        }
        // Tail in.
        {
            let site = &mut self.sites[ts.raw() as usize];
            at += site.params.tail_delay + Self::serialize_on_tail(site, false, now, bytes);
            let dropped = site.tail_in_loss.drops(now, rng);
            stats.record(SegmentClass::TailIn, Some(ts), kind, bytes, dropped);
            if dropped {
                return None;
            }
        }
        // LAN in (receiver side).
        {
            let site = &mut self.sites[ts.raw() as usize];
            at += site.params.lan_delay;
            let dropped = site.lan_loss.drops(now, rng);
            stats.record(SegmentClass::Lan, Some(ts), kind, bytes, dropped);
            if dropped {
                return None;
            }
            at += Self::jitter_of(site, rng);
        }
        Some(Delivery { to, at })
    }

    /// Sends one multicast copy to `members` (the sender is excluded
    /// here, so callers can stream a whole group set), honoring `scope`.
    /// Loss is evaluated **per physical copy**: once on the sender's
    /// tail-out, once per destination-site branch (WAN + tail-in), and per
    /// member on each LAN — so tail-circuit loss is correlated across a
    /// site, as in the paper.
    #[allow(clippy::too_many_arguments)]
    pub fn multicast(
        &mut self,
        now: SimTime,
        from: HostId,
        members: impl IntoIterator<Item = HostId>,
        scope: TtlScope,
        kind: &'static str,
        bytes: usize,
        rng: &mut SmallRng,
        stats: &mut NetStats,
    ) -> Vec<Delivery> {
        let fs = self.site_of(from);
        let mut out = Vec::new();

        // Partition members by site, respecting scope.
        let mut by_site: HashMap<SiteId, Vec<HostId>> = HashMap::new();
        for m in members {
            if m != from && self.in_scope(from, m, scope) {
                by_site.entry(self.site_of(m)).or_default().push(m);
            }
        }
        if by_site.is_empty() {
            return out;
        }
        // Deterministic site order.
        let mut site_ids: Vec<SiteId> = by_site.keys().copied().collect();
        site_ids.sort();

        // Local (same-site) members: one LAN broadcast, per-member loss.
        if let Some(local) = by_site.get(&fs) {
            for &m in local {
                let site = &mut self.sites[fs.raw() as usize];
                let dropped = site.lan_loss.drops(now, rng);
                stats.record(SegmentClass::Lan, Some(fs), kind, bytes, dropped);
                if !dropped {
                    let at = now + site.params.lan_delay + Self::jitter_of(site, rng);
                    out.push(Delivery { to: m, at });
                }
            }
        }

        let remote_sites: Vec<SiteId> = site_ids.iter().copied().filter(|&s| s != fs).collect();
        if remote_sites.is_empty() {
            return out;
        }

        // One copy crosses the sender's LAN and tail circuit; a drop here
        // loses the packet for every remote site.
        let (mut base_at, survived) = {
            let site = &mut self.sites[fs.raw() as usize];
            let mut at = now + site.params.lan_delay;
            let lan_dropped = site.lan_loss.drops(now, rng);
            stats.record(SegmentClass::Lan, Some(fs), kind, bytes, lan_dropped);
            if lan_dropped {
                (at, false)
            } else {
                at += site.params.tail_delay + Self::serialize_on_tail(site, true, now, bytes);
                let tail_dropped = site.tail_out_loss.drops(now, rng);
                stats.record(SegmentClass::TailOut, Some(fs), kind, bytes, tail_dropped);
                (at, !tail_dropped)
            }
        };
        if !survived {
            return out;
        }

        // One copy enters the backbone.
        stats.record(SegmentClass::Wan, None, kind, bytes, false);
        base_at += self.sites[fs.raw() as usize].params.wan_delay;

        for ts in remote_sites {
            // Per-branch WAN loss (loss "high in the distribution tree"
            // would be modelled by tail-out above; per-branch loss models
            // independent backbone branches).
            if self.wan_loss.drops(now, rng) {
                stats.record(SegmentClass::Wan, None, kind, 0, true);
                continue;
            }
            let mut at = base_at + self.sites[ts.raw() as usize].params.wan_delay;
            // One copy crosses the destination tail circuit: correlated
            // loss for the whole site.
            {
                let site = &mut self.sites[ts.raw() as usize];
                at += site.params.tail_delay + Self::serialize_on_tail(site, false, now, bytes);
                let dropped = site.tail_in_loss.drops(now, rng);
                stats.record(SegmentClass::TailIn, Some(ts), kind, bytes, dropped);
                if dropped {
                    continue;
                }
            }
            for &m in &by_site[&ts] {
                let site = &mut self.sites[ts.raw() as usize];
                let dropped = site.lan_loss.drops(now, rng);
                stats.record(SegmentClass::Lan, Some(ts), kind, bytes, dropped);
                if !dropped {
                    let at = at + site.params.lan_delay + Self::jitter_of(site, rng);
                    out.push(Delivery { to: m, at });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_site_topo() -> (Topology, HostId, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let a = b.host(s0);
        let a2 = b.host(s0);
        let c = b.host(s1);
        (b.build(), a, a2, c)
    }

    #[test]
    fn base_latency_components() {
        let (t, a, a2, c) = two_site_topo();
        // Same site: one LAN delay.
        assert_eq!(t.base_latency(a, a2), Duration::from_micros(500));
        // Cross-site: lan + tail + wan*2 + tail + lan.
        let expect = Duration::from_micros(500)
            + Duration::from_millis(2)
            + Duration::from_millis(40)
            + Duration::from_millis(2)
            + Duration::from_micros(500);
        assert_eq!(t.base_latency(a, c), expect);
        // Symmetric.
        assert_eq!(t.base_latency(c, a), expect);
    }

    #[test]
    fn unicast_lossless_delivers_on_time() {
        let (mut t, a, _, c) = two_site_topo();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut stats = NetStats::default();
        let d = t
            .unicast(SimTime::ZERO, a, c, "data", 100, &mut rng, &mut stats)
            .unwrap();
        assert_eq!(d.to, c);
        assert_eq!(d.at.since(SimTime::ZERO), t.base_latency(a, c));
        assert_eq!(stats.class_kind(SegmentClass::Wan, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::TailOut, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::TailIn, "data").carried, 1);
    }

    #[test]
    fn tail_in_outage_drops_whole_site() {
        // A multicast during the destination site's inbound outage must be
        // lost by every member of that site but none of the local site.
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams {
            tail_in_loss: LossModel::outage(SimTime::ZERO, Duration::from_secs(100)),
            ..SiteParams::default()
        });
        let sender = b.host(s0);
        let local = b.hosts(s0, 3);
        let remote = b.hosts(s1, 5);
        let mut t = b.build();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut stats = NetStats::default();

        let members: Vec<HostId> = local.iter().chain(remote.iter()).copied().collect();
        let deliveries = t.multicast(
            SimTime::ZERO,
            sender,
            members.iter().copied(),
            TtlScope::Global,
            "data",
            64,
            &mut rng,
            &mut stats,
        );
        let delivered: Vec<HostId> = deliveries.iter().map(|d| d.to).collect();
        for m in &local {
            assert!(delivered.contains(m), "local member must receive");
        }
        for m in &remote {
            assert!(!delivered.contains(m), "remote member must lose");
        }
        // Exactly one correlated drop on the tail circuit.
        assert_eq!(
            stats
                .site_tail(SiteId(1), SegmentClass::TailIn, "data")
                .dropped,
            1
        );
    }

    #[test]
    fn multicast_counts_one_wan_copy() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let sender = b.host(s0);
        let mut members = Vec::new();
        let mut sites = Vec::new();
        for _ in 0..10 {
            let s = b.site(SiteParams::default());
            sites.push(s);
            members.extend(b.hosts(s, 4));
        }
        let mut t = b.build();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stats = NetStats::default();
        let deliveries = t.multicast(
            SimTime::ZERO,
            sender,
            members.iter().copied(),
            TtlScope::Global,
            "data",
            64,
            &mut rng,
            &mut stats,
        );
        assert_eq!(deliveries.len(), 40);
        // Multicast economy: 1 tail-out copy, 1 WAN copy, 10 tail-in copies.
        assert_eq!(stats.class_kind(SegmentClass::TailOut, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::Wan, "data").carried, 1);
        assert_eq!(stats.class_kind(SegmentClass::TailIn, "data").carried, 10);
    }

    #[test]
    fn site_scope_confines_multicast() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let sender = b.host(s0);
        let local = b.host(s0);
        let remote = b.host(s1);
        let mut t = b.build();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut stats = NetStats::default();
        let deliveries = t.multicast(
            SimTime::ZERO,
            sender,
            [local, remote],
            TtlScope::Site,
            "retrans",
            64,
            &mut rng,
            &mut stats,
        );
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].to, local);
        // Nothing crossed the tail or WAN.
        assert_eq!(stats.class_total(SegmentClass::TailOut).carried, 0);
        assert_eq!(stats.class_total(SegmentClass::Wan).carried, 0);
    }

    #[test]
    fn region_scope() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams {
            region: 1,
            ..SiteParams::default()
        });
        let s1 = b.site(SiteParams {
            region: 1,
            ..SiteParams::default()
        });
        let s2 = b.site(SiteParams {
            region: 2,
            ..SiteParams::default()
        });
        let sender = b.host(s0);
        let same_region = b.host(s1);
        let other_region = b.host(s2);
        let mut t = b.build();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut stats = NetStats::default();
        let deliveries = t.multicast(
            SimTime::ZERO,
            sender,
            [same_region, other_region],
            TtlScope::Region,
            "discovery-query",
            32,
            &mut rng,
            &mut stats,
        );
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].to, same_region);
    }

    #[test]
    fn bandwidth_queueing_serializes() {
        // Two back-to-back unicasts over a slow tail circuit: the second
        // must queue behind the first.
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams {
            tail_bandwidth_bps: Some(8_000), // 1 byte/ms
            ..SiteParams::default()
        });
        let s1 = b.site(SiteParams::default());
        let a = b.host(s0);
        let c = b.host(s1);
        let mut t = b.build();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut stats = NetStats::default();
        let d1 = t
            .unicast(SimTime::ZERO, a, c, "data", 1000, &mut rng, &mut stats)
            .unwrap();
        let d2 = t
            .unicast(SimTime::ZERO, a, c, "data", 1000, &mut rng, &mut stats)
            .unwrap();
        // 1000 bytes at 1 byte/ms = 1 s serialization each.
        let gap = d2.at - d1.at;
        assert_eq!(gap, Duration::from_secs(1));
    }

    #[test]
    fn self_send_is_cheap() {
        let (mut t, a, _, _) = two_site_topo();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut stats = NetStats::default();
        let d = t
            .unicast(SimTime::ZERO, a, a, "nack", 10, &mut rng, &mut stats)
            .unwrap();
        assert!(d.at.since(SimTime::ZERO) < Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn builder_rejects_unknown_site() {
        let mut b = TopologyBuilder::new();
        b.host(SiteId(3));
    }

    #[test]
    fn jitter_varies_and_can_reorder_deliveries() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams {
            jitter: Duration::from_millis(20),
            ..SiteParams::default()
        });
        let a = b.host(s0);
        let c = b.host(s1);
        let mut t = b.build();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut stats = NetStats::default();
        let base = t.base_latency(a, c);
        let mut arrivals = Vec::new();
        for i in 0..50u64 {
            let sent = SimTime::from_millis(i);
            let d = t
                .unicast(sent, a, c, "data", 64, &mut rng, &mut stats)
                .unwrap();
            let extra = d.at.since(sent).saturating_sub(base);
            assert!(
                extra <= Duration::from_millis(20),
                "jitter bound violated: {extra:?}"
            );
            arrivals.push(d.at);
        }
        // Jitter actually varies...
        let distinct: std::collections::BTreeSet<_> =
            arrivals.iter().map(|t| t.nanos() % 1_000_000_000).collect();
        assert!(distinct.len() > 10);
        // ...and with 1 ms spacing vs 20 ms jitter, reordering occurs.
        let reordered = arrivals.windows(2).any(|w| w[1] < w[0]);
        assert!(reordered, "expected at least one inversion");
    }
}
