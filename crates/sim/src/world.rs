//! The simulation driver: actors, timers, multicast groups, and the
//! deterministic event loop.
//!
//! An [`Actor`] is a protocol endpoint (sender, receiver, logging server,
//! application). Actors react to packets and timers through a [`Ctx`]
//! that can send unicast/multicast, arm timers, join groups, and draw
//! deterministic randomness. The world also supports failure injection:
//! a [`crashed`](World::crash) host silently discards everything until
//! [`revived`](World::revive) — used by the primary-logger failover
//! tests.

use std::any::Any;
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use std::sync::Arc;

use lbrm_trace::{MetricsRegistry, ProtocolEvent, Tracer};
use lbrm_wire::{GroupId, HostId, Packet, TtlScope};

use crate::queue::{EventQueue, QueueBackend};
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::topology::Topology;

/// A protocol endpoint living on one simulated host.
///
/// `Actor: Any` enables post-run inspection via
/// [`World::actor`] / [`World::actor_mut`] downcasts.
pub trait Actor: Any {
    /// Called once when the simulation starts (in host-insertion order).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: HostId, packet: Packet);

    /// A timer armed via [`Ctx::set_timer_at`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

enum Ev {
    Packet {
        from: HostId,
        to: HostId,
        packet: Packet,
    },
    Timer {
        host: HostId,
        token: u64,
    },
}

/// The world an actor sees while handling an event.
pub struct Ctx<'a> {
    host: HostId,
    now: SimTime,
    topo: &'a mut Topology,
    queue: &'a mut EventQueue<Ev>,
    groups: &'a mut HashMap<GroupId, BTreeSet<HostId>>,
    rng: &'a mut SmallRng,
    net_rng: &'a mut SmallRng,
    stats: &'a mut NetStats,
    tracer: &'a Tracer,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this actor lives on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Deterministic per-host randomness.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Base (loss-free, queue-free) one-way latency to `to` — what a
    /// protocol would learn from out-of-band RTT measurement.
    pub fn base_latency(&self, to: HostId) -> Duration {
        self.topo.base_latency(self.host, to)
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at, ev);
    }

    /// Sends `packet` to a single host.
    pub fn send_unicast(&mut self, to: HostId, packet: Packet) {
        // The network model only needs the on-wire size; `encoded_len`
        // computes it arithmetically so no simulated send serializes.
        let bytes = packet.encoded_len();
        let kind = packet.kind();
        let delivery = self.topo.unicast(
            self.now,
            self.host,
            to,
            kind,
            bytes,
            self.net_rng,
            self.stats,
        );
        let copies = u32::from(delivery.is_some());
        self.tracer
            .emit_from(self.now.nanos(), self.host, || ProtocolEvent::NetPacket {
                kind,
                multicast: false,
                copies,
            });
        if let Some(d) = delivery {
            self.push(
                d.at,
                Ev::Packet {
                    from: self.host,
                    to: d.to,
                    packet,
                },
            );
        }
    }

    /// Multicasts `packet` to the members of its group (sender excluded)
    /// within `scope`.
    pub fn send_multicast(&mut self, scope: TtlScope, packet: Packet) {
        // One arithmetic length shared by every delivery of this packet;
        // members are iterated straight out of the group set without an
        // intermediate Vec.
        let bytes = packet.encoded_len();
        let kind = packet.kind();
        let members = self.groups.get(&packet.group());
        let deliveries = self.topo.multicast(
            self.now,
            self.host,
            members.into_iter().flatten().copied(),
            scope,
            kind,
            bytes,
            self.net_rng,
            self.stats,
        );
        let copies = deliveries.len().min(u32::MAX as usize) as u32;
        self.tracer
            .emit_from(self.now.nanos(), self.host, || ProtocolEvent::NetPacket {
                kind,
                multicast: true,
                copies,
            });
        for d in deliveries {
            self.push(
                d.at,
                Ev::Packet {
                    from: self.host,
                    to: d.to,
                    packet: packet.clone(),
                },
            );
        }
    }

    /// Arms a timer to fire at `at` (clamped to now).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        let host = self.host;
        self.push(at.max(self.now), Ev::Timer { host, token });
    }

    /// Arms a timer to fire after `d`.
    pub fn set_timer_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.set_timer_at(at, token);
    }

    /// Joins the calling host to `group`.
    pub fn join(&mut self, group: GroupId) {
        self.groups.entry(group).or_default().insert(self.host);
    }

    /// Removes the calling host from `group`.
    pub fn leave(&mut self, group: GroupId) {
        if let Some(m) = self.groups.get_mut(&group) {
            m.remove(&self.host);
        }
    }
}

/// The simulation: topology + actors + event queue.
///
/// [`HostId`]s are dense indices (the topology builder hands them out
/// sequentially), so the per-host tables — actors, RNG streams, crash
/// flags — are plain vectors: the per-event dispatch does array indexing
/// instead of hash lookups.
pub struct World {
    topo: Topology,
    actors: Vec<Option<Box<dyn Actor>>>,
    order: Vec<HostId>,
    groups: HashMap<GroupId, BTreeSet<HostId>>,
    queue: EventQueue<Ev>,
    now: SimTime,
    rngs: Vec<Option<SmallRng>>,
    net_rng: SmallRng,
    stats: NetStats,
    crashed: Vec<bool>,
    started: bool,
    seed: u64,
    tracer: Tracer,
    queue_depth_max: usize,
    gauge_registry: Option<Arc<MetricsRegistry>>,
}

impl World {
    /// Creates a world over `topo`, fully determined by `seed`, on the
    /// default event-queue backend (see [`QueueBackend::from_env`]).
    pub fn new(topo: Topology, seed: u64) -> World {
        World::with_backend(topo, seed, QueueBackend::from_env())
    }

    /// Creates a world on an explicit event-queue backend — the hook the
    /// wheel-vs-heap differential tests use.
    pub fn with_backend(topo: Topology, seed: u64, backend: QueueBackend) -> World {
        let hosts = topo.host_count();
        World {
            topo,
            actors: (0..hosts).map(|_| None).collect(),
            order: Vec::new(),
            groups: HashMap::new(),
            queue: EventQueue::new(backend),
            now: SimTime::ZERO,
            rngs: (0..hosts).map(|_| None).collect(),
            net_rng: SmallRng::seed_from_u64(seed ^ 0x6e65_7477_6f72_6b00),
            stats: NetStats::default(),
            crashed: vec![false; hosts],
            started: false,
            seed,
            tracer: Tracer::disabled(),
            queue_depth_max: 0,
            gauge_registry: None,
        }
    }

    /// The event-queue backend this world runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Grows the per-host tables to cover `host` (ids normally come from
    /// the topology builder and are pre-sized; this keeps out-of-band ids
    /// safe).
    fn ensure_host(&mut self, host: HostId) -> usize {
        let idx = host.raw() as usize;
        if idx >= self.actors.len() {
            self.actors.resize_with(idx + 1, || None);
            self.rngs.resize_with(idx + 1, || None);
            self.crashed.resize(idx + 1, false);
        }
        idx
    }

    /// Attaches a protocol-event tracer: every simulated transmission is
    /// reported as a [`ProtocolEvent::NetPacket`] (wire kind, multicast
    /// flag, copies that survived the loss model). Disabled by default.
    pub fn set_trace(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a registry that receives simulator gauges — the
    /// event-queue depth (current and high-water) and per-link tail
    /// queue backlogs — whenever a `run_*` call returns (or
    /// [`flush_gauges`](World::flush_gauges) is called directly).
    pub fn set_gauges(&mut self, registry: Arc<MetricsRegistry>) {
        self.gauge_registry = Some(registry);
    }

    /// Highest event-queue depth seen so far (cheap: one compare per
    /// step keeps the hot loop registry-free).
    pub fn queue_depth_max(&self) -> usize {
        self.queue_depth_max
    }

    /// Current event-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Writes the simulator gauges into the attached registry (no-op
    /// without one): `sim.queue_depth`, `sim.queue_depth_max`, and
    /// `sim.link.s<N>.tail_{in,out}_backlog_max_ns` for every site
    /// whose tail circuit ever queued.
    pub fn flush_gauges(&mut self) {
        let Some(reg) = &self.gauge_registry else {
            return;
        };
        reg.set_gauge("sim.queue_depth", self.queue.len() as u64);
        reg.set_gauge("sim.queue_depth_max", self.queue_depth_max as u64);
        for (site, tail_in, tail_out) in self.topo.tail_backlog_maxima() {
            if tail_in > Duration::ZERO {
                reg.set_gauge(
                    &format!("sim.link.s{}.tail_in_backlog_max_ns", site.raw()),
                    tail_in.as_nanos() as u64,
                );
            }
            if tail_out > Duration::ZERO {
                reg.set_gauge(
                    &format!("sim.link.s{}.tail_out_backlog_max_ns", site.raw()),
                    tail_out.as_nanos() as u64,
                );
            }
        }
    }

    /// Installs an actor on `host`. Replaces any existing actor.
    pub fn add_actor(&mut self, host: HostId, actor: impl Actor) {
        let idx = self.ensure_host(host);
        if self.actors[idx].replace(Box::new(actor)).is_none() {
            self.order.push(host);
        }
        if self.rngs[idx].is_none() {
            // Distinct, deterministic stream per host.
            self.rngs[idx] = Some(SmallRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(host.raw()),
            ));
        }
    }

    /// Joins `host` to `group` from outside the actor (setup convenience).
    pub fn join(&mut self, host: HostId, group: GroupId) {
        self.groups.entry(group).or_default().insert(host);
    }

    /// Arms a timer for `host` from outside the actor — used by harness
    /// code that schedules application work after the world has started.
    pub fn schedule_timer(&mut self, host: HostId, at: SimTime, token: u64) {
        self.queue.push(at.max(self.now), Ev::Timer { host, token });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Immutable access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Marks a host as crashed: it receives no packets or timers and its
    /// pending timers are suppressed while down.
    pub fn crash(&mut self, host: HostId) {
        let idx = self.ensure_host(host);
        self.crashed[idx] = true;
    }

    /// Revives a crashed host. Packets and timers scheduled while it was
    /// down are gone; new ones are delivered normally.
    pub fn revive(&mut self, host: HostId) {
        let idx = self.ensure_host(host);
        self.crashed[idx] = false;
    }

    /// `true` if the host is currently crashed.
    pub fn is_crashed(&self, host: HostId) -> bool {
        self.crashed
            .get(host.raw() as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Downcasts the actor on `host`.
    ///
    /// # Panics
    ///
    /// If the host has no actor of type `T`.
    pub fn actor<T: Actor>(&self, host: HostId) -> &T {
        let a: &dyn Any = self
            .actors
            .get(host.raw() as usize)
            .and_then(|slot| slot.as_ref())
            .expect("no actor on host")
            .as_ref();
        a.downcast_ref::<T>().expect("actor type mismatch")
    }

    /// Mutable downcast of the actor on `host`.
    ///
    /// # Panics
    ///
    /// If the host has no actor of type `T`.
    pub fn actor_mut<T: Actor>(&mut self, host: HostId) -> &mut T {
        let a: &mut dyn Any = self
            .actors
            .get_mut(host.raw() as usize)
            .and_then(|slot| slot.as_mut())
            .expect("no actor on host")
            .as_mut();
        a.downcast_mut::<T>().expect("actor type mismatch")
    }

    fn dispatch(&mut self, host: HostId, f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>)) {
        let idx = host.raw() as usize;
        if idx >= self.actors.len() || self.crashed[idx] {
            return;
        }
        // Take the actor out of its slot (a pointer move, not a hash
        // re-insert) so it can borrow the rest of the world mutably.
        let Some(mut actor) = self.actors[idx].take() else {
            return;
        };
        let rng = self.rngs[idx].as_mut().expect("host rng");
        let mut ctx = Ctx {
            host,
            now: self.now,
            topo: &mut self.topo,
            queue: &mut self.queue,
            groups: &mut self.groups,
            rng,
            net_rng: &mut self.net_rng,
            stats: &mut self.stats,
            tracer: &self.tracer,
        };
        f(actor.as_mut(), &mut ctx);
        self.actors[idx] = Some(actor);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let hosts = self.order.clone();
        for host in hosts {
            self.dispatch(host, |a, ctx| a.on_start(ctx));
        }
    }

    /// Records the current queue depth into the high-water gauge.
    #[inline]
    fn note_queue_depth(&mut self) {
        if self.queue.len() > self.queue_depth_max {
            self.queue_depth_max = self.queue.len();
        }
    }

    /// Runs one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        self.note_queue_depth();
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must be monotonic");
        self.now = at.max(self.now);
        match ev {
            Ev::Packet { from, to, packet } => {
                self.dispatch(to, |a, ctx| a.on_packet(ctx, from, packet));
            }
            Ev::Timer { host, token } => {
                self.dispatch(host, |a, ctx| a.on_timer(ctx, token));
            }
        }
        // Sample again after the handler ran: a fan-out (multicast burst,
        // retransmission storm) peaks *between* pops, and the two
        // backends must report the same high-water mark.
        self.note_queue_depth();
        true
    }

    /// Runs until virtual time reaches `until` or the queue drains.
    /// Events at exactly `until` are processed.
    pub fn run_until(&mut self, until: SimTime) {
        self.start_if_needed();
        loop {
            match self.queue.next_at() {
                Some(at) if at <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
        self.flush_gauges();
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Runs until the event queue is empty or `limit` is hit.
    pub fn run_until_idle(&mut self, limit: SimTime) {
        self.start_if_needed();
        while let Some(at) = self.queue.next_at() {
            if at > limit {
                break;
            }
            self.step();
        }
        self.flush_gauges();
    }

    /// A fresh RNG derived from the world seed and `salt` — for scenario
    /// setup code that wants determinism without threading seeds around.
    ///
    /// Derivation is a pure function of `(seed, salt)` (a splitmix64
    /// finalizer), so calling this never perturbs the network RNG: two
    /// runs that differ only in how many setup-time `derived_rng` calls
    /// they make see identical loss decisions and replay identically.
    pub fn derived_rng(&self, salt: u64) -> SmallRng {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{SiteParams, TopologyBuilder};
    use bytes::Bytes;
    use lbrm_wire::{EpochId, Seq, SourceId};

    const GROUP: GroupId = GroupId(7);

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GROUP,
            source: SourceId(1),
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"x"),
        }
    }

    /// Emits one data packet per second, three times.
    struct Beacon {
        sent: u32,
    }

    impl Actor for Beacon {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join(GROUP);
            ctx.set_timer_in(Duration::from_secs(1), 0);
        }

        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: HostId, _p: Packet) {}

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.sent += 1;
            ctx.send_multicast(TtlScope::Global, data(self.sent));
            if self.sent < 3 {
                ctx.set_timer_in(Duration::from_secs(1), 0);
            }
        }
    }

    /// Records every received packet with its arrival time.
    #[derive(Default)]
    struct Sink {
        got: Vec<(SimTime, u32)>,
    }

    impl Actor for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join(GROUP);
        }

        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: HostId, p: Packet) {
            if let Packet::Data { seq, .. } = p {
                self.got.push((ctx.now(), seq.raw()));
            }
        }
    }

    fn build() -> (World, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let tx = b.host(s0);
        let rx = b.host(s1);
        let mut w = World::new(b.build(), 99);
        w.add_actor(tx, Beacon { sent: 0 });
        w.add_actor(rx, Sink::default());
        (w, tx, rx)
    }

    #[test]
    fn multicast_beacon_reaches_sink() {
        let (mut w, tx, rx) = build();
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.actor::<Beacon>(tx).sent, 3);
        let sink = w.actor::<Sink>(rx);
        assert_eq!(sink.got.len(), 3);
        assert_eq!(
            sink.got.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Arrivals are 1 s apart, offset by path latency.
        let lat = w.topology().base_latency(tx, rx);
        assert_eq!(sink.got[0].0, SimTime::from_secs(1) + lat);
        assert_eq!(sink.got[1].0, SimTime::from_secs(2) + lat);
    }

    #[test]
    fn crash_suppresses_delivery_and_timers() {
        let (mut w, _tx, rx) = build();
        w.crash(rx);
        w.run_until(SimTime::from_secs(10));
        assert!(w.actor::<Sink>(rx).got.is_empty());
        w.revive(rx);
        assert!(!w.is_crashed(rx));
    }

    #[test]
    fn crash_mid_run_loses_only_later_packets() {
        let (mut w, _tx, rx) = build();
        w.run_until(SimTime::from_millis(1500)); // first beacon delivered
        w.crash(rx);
        w.run_until(SimTime::from_millis(2500)); // second suppressed
        w.revive(rx);
        w.run_until(SimTime::from_secs(10)); // third delivered
        let got: Vec<u32> = w.actor::<Sink>(rx).got.iter().map(|(_, s)| *s).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn derived_rng_does_not_perturb_lossy_replay() {
        use crate::loss::LossModel;
        use rand::Rng;

        // Two identically-seeded lossy runs that differ only in how many
        // setup-time derived_rng calls they make must see the same loss
        // decisions, deliveries, and NetStats.
        let run = |derived_calls: usize| {
            let mut b = TopologyBuilder::new();
            let s0 = b.site(SiteParams::default());
            let s1 = b.site(SiteParams {
                tail_in_loss: LossModel::rate(0.4),
                ..SiteParams::default()
            });
            let tx = b.host(s0);
            let rx = b.host(s1);
            let mut w = World::new(b.build(), 1234);
            w.add_actor(tx, Beacon { sent: 0 });
            w.add_actor(rx, Sink::default());
            for salt in 0..derived_calls as u64 {
                let _ = w.derived_rng(salt).random::<u64>();
            }
            w.run_until(SimTime::from_secs(10));
            (w.actor::<Sink>(rx).got.clone(), w.stats().clone())
        };
        assert_eq!(run(0), run(5));
    }

    #[test]
    fn derived_rng_is_pure_in_seed_and_salt() {
        use rand::Rng;
        let (mut w, _, _) = build();
        let a: u64 = w.derived_rng(7).random();
        // Interleave other salts and advance the simulation; salt 7 must
        // still yield the same stream.
        let _ = w.derived_rng(8).random::<u64>();
        w.run_until(SimTime::from_secs(2));
        let b: u64 = w.derived_rng(7).random();
        assert_eq!(a, b);
        // Distinct salts give distinct streams.
        assert_ne!(a, w.derived_rng(9).random::<u64>());
    }

    #[test]
    fn wheel_and_heap_backends_replay_identically() {
        use crate::loss::LossModel;
        let run = |backend: QueueBackend| {
            let mut b = TopologyBuilder::new();
            let s0 = b.site(SiteParams::default());
            let s1 = b.site(SiteParams {
                tail_in_loss: LossModel::rate(0.3),
                ..SiteParams::default()
            });
            let tx = b.host(s0);
            let rx = b.host(s1);
            let mut w = World::with_backend(b.build(), 1234, backend);
            assert_eq!(w.queue_backend(), backend);
            w.add_actor(tx, Beacon { sent: 0 });
            w.add_actor(rx, Sink::default());
            w.run_until(SimTime::from_secs(10));
            (
                w.actor::<Sink>(rx).got.clone(),
                w.stats().clone(),
                w.queue_depth_max(),
            )
        };
        assert_eq!(run(QueueBackend::Wheel), run(QueueBackend::Heap));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut w, _tx, rx) = build();
            w.run_until(SimTime::from_secs(10));
            w.actor::<Sink>(rx).got.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let (mut w, _, _) = build();
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stats_account_multicast() {
        let (mut w, _, _) = build();
        w.run_until(SimTime::from_secs(10));
        let wan = w
            .stats()
            .class_kind(crate::stats::SegmentClass::Wan, "data");
        assert_eq!(wan.carried, 3);
    }

    #[test]
    fn timer_tokens_roundtrip() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_in(Duration::from_secs(2), 22);
                ctx.set_timer_in(Duration::from_secs(1), 11);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: HostId, _: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut b = TopologyBuilder::new();
        let s = b.site(SiteParams::default());
        let h = b.host(s);
        let mut w = World::new(b.build(), 1);
        w.add_actor(h, T { fired: vec![] });
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.actor::<T>(h).fired, vec![11, 22]);
    }

    #[test]
    fn leave_stops_delivery() {
        struct Leaver {
            got: u32,
        }
        impl Actor for Leaver {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(GROUP);
            }
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, _: HostId, _: Packet) {
                self.got += 1;
                ctx.leave(GROUP);
            }
        }
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let tx = b.host(s0);
        let rx = b.host(s0);
        let mut w = World::new(b.build(), 5);
        w.add_actor(tx, Beacon { sent: 0 });
        w.add_actor(rx, Leaver { got: 0 });
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.actor::<Leaver>(rx).got, 1);
    }
}
