//! The simulation driver: actors, timers, multicast groups, and the
//! deterministic — optionally sharded — event loop.
//!
//! An [`Actor`] is a protocol endpoint (sender, receiver, logging server,
//! application). Actors react to packets and timers through a [`Ctx`]
//! that can send unicast/multicast, arm timers, join groups, and draw
//! deterministic randomness. The world also supports failure injection:
//! a [`crashed`](World::crash) host silently discards everything until
//! [`revived`](World::revive) (state intact) or
//! [`restarted`](World::restart) (fresh actor, same host), and
//! [`World::partition`]/[`World::heal`] cut and restore links between
//! host groups — used by the primary-logger failover tests and the
//! chaos suite.
//!
//! # Sharded execution
//!
//! The world partitions *sites* into shards (`LBRM_SIM_SHARDS`, or
//! [`World::with_options`]); hosts follow their site. Each shard owns a
//! private event queue plus all state its events can touch (see
//! [`crate::shard`]). Shards advance independently inside a conservative
//! synchronization window: with `L` = the topology
//! [`lookahead`](Topology::lookahead) (the minimum latency of any
//! cross-shard transmission), every epoch processes events in
//! `[t_min, t_min + L)` — no event generated inside the window can land
//! in another shard before it closes, so shards only exchange events at
//! the epoch barrier.
//!
//! Determinism is preserved *exactly*: a fixed seed produces
//! byte-identical traces, `NetStats`, and deliveries for any shard
//! count, because
//!
//! 1. every scheduled event carries a placement-invariant total-order
//!    key (see [`crate::shard`]),
//! 2. every random draw charges either a per-host stream or the owning
//!    site's stream — never a global one, and
//! 3. cross-site transmissions are evaluated in two halves (source-site
//!    egress, destination-site ingress) whose draws land on the
//!    respective sites' own streams at the same virtual times
//!    regardless of sharding.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use lbrm_trace::{MetricsRegistry, ProtocolEvent, TraceSink, Tracer};
use lbrm_wire::{BundleMode, GroupId, HostId, Packet, SiteId, TtlScope};

use crate::queue::QueueBackend;
use crate::shard::{capture_activate, capture_take, forward_merged, Ev, IngressKind, Shard};
use crate::stats::{BundleStats, NetStats, SegmentClass};
use crate::time::SimTime;
use crate::topology::{Delivery, SiteNet, Topology};

/// A protocol endpoint living on one simulated host.
///
/// `Actor: Any` enables post-run inspection via
/// [`World::actor`] / [`World::actor_mut`] downcasts; `Actor: Send`
/// lets the sharded world process shards on worker threads.
pub trait Actor: Any + Send {
    /// Called once when the simulation starts (in host-insertion order).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: HostId, packet: Packet);

    /// A timer armed via [`Ctx::set_timer_at`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// The world an actor sees while handling an event.
pub struct Ctx<'a> {
    host: HostId,
    now: SimTime,
    topo: &'a Topology,
    shard: &'a mut Shard,
    rng: &'a mut SmallRng,
    tracer: &'a Tracer,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this actor lives on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Deterministic per-host randomness.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Base (loss-free, queue-free) one-way latency to `to` — what a
    /// protocol would learn from out-of-band RTT measurement.
    pub fn base_latency(&self, to: HostId) -> Duration {
        self.topo.base_latency(self.host, to)
    }

    fn push(&mut self, at: SimTime, dst_site: SiteId, ev: Ev) {
        self.shard.push_from(self.host.raw(), at, dst_site, ev);
    }

    /// Sends `packet` to a single host.
    pub fn send_unicast(&mut self, to: HostId, packet: Packet) {
        // The network model only needs the on-wire size; `encoded_len`
        // computes it arithmetically so no simulated send serializes.
        let bytes = packet.encoded_len();
        let kind = packet.kind();
        let from = self.host;
        let now = self.now;
        // Bundle accounting: model what the wire's `BundleBuilder` would
        // do with this host's outbound stream, without serializing.
        self.shard.meters[from.raw() as usize].record(now, (0, to.raw(), 0), kind, bytes);
        let fs = self.topo.site_of(from);
        let mut copies = 0u32;
        if to == from {
            let d = Topology::self_delivery(now, to);
            copies = 1;
            self.emit_net(kind, false, copies);
            self.push(d.at, fs, Ev::Packet { from, to, packet });
            return;
        }
        let ts = self.topo.site_of(to);
        if ts == fs {
            let delivery = {
                let Shard { nets, stats, .. } = &mut *self.shard;
                let net = nets[fs.raw() as usize].as_mut().expect("site net");
                self.topo.lan_delivery(fs, net, now, to, kind, bytes, stats)
            };
            copies = u32::from(delivery.is_some());
            self.emit_net(kind, false, copies);
            if let Some(d) = delivery {
                self.push(d.at, fs, Ev::Packet { from, to, packet });
            }
            return;
        }
        // Cross-site: source half here, destination half at ingress time
        // on the destination site's shard.
        let ingress_at = {
            let Shard { nets, stats, .. } = &mut *self.shard;
            let net = nets[fs.raw() as usize].as_mut().expect("site net");
            match self.topo.egress(fs, net, now, kind, bytes, stats) {
                Some(out) => {
                    let dropped = self.topo.wan_drop(net, now);
                    stats.record(SegmentClass::Wan, None, kind, bytes, dropped);
                    (!dropped).then(|| out + self.topo.wan_latency(fs, ts))
                }
                None => None,
            }
        };
        if ingress_at.is_some() {
            copies = 1;
        }
        self.emit_net(kind, false, copies);
        if let Some(t_in) = ingress_at {
            self.push(
                t_in,
                ts,
                Ev::Ingress {
                    from,
                    site: ts,
                    packet,
                    kind: IngressKind::Unicast { to },
                },
            );
        }
    }

    /// Multicasts `packet` to the members of its group (sender excluded)
    /// within `scope`.
    ///
    /// Local (same-site) members are resolved at send time from the
    /// sender site's membership. One copy crosses the sender's tail
    /// circuit and fans out into a WAN branch per in-scope remote
    /// *site*; each branch's membership is resolved when it arrives at
    /// that site ([`Ev::Ingress`]), so group state never needs to be
    /// replicated across shards. The traced `copies` counts surviving
    /// local deliveries plus surviving WAN branches.
    pub fn send_multicast(&mut self, scope: TtlScope, packet: Packet) {
        // One arithmetic length shared by every delivery of this packet;
        // members are iterated straight out of the group set without an
        // intermediate Vec.
        let bytes = packet.encoded_len();
        let kind = packet.kind();
        let group = packet.group();
        let from = self.host;
        let now = self.now;
        self.shard.meters[from.raw() as usize].record(
            now,
            (1, u64::from(group.raw()), u64::from(scope.ttl())),
            kind,
            bytes,
        );
        let fs = self.topo.site_of(from);
        let fs_idx = fs.raw() as usize;
        let site_count = self.topo.site_count();

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut branches: Vec<(SiteId, SimTime)> = Vec::new();
        {
            let Shard {
                nets,
                stats,
                members,
                ..
            } = &mut *self.shard;
            let net = nets[fs_idx].as_mut().expect("site net");
            // Same-site members: direct LAN fan-out (always in scope).
            if let Some(set) = members[fs_idx].get(&group) {
                for &m in set {
                    if m == from {
                        continue;
                    }
                    deliveries.extend(self.topo.lan_delivery(fs, net, now, m, kind, bytes, stats));
                }
            }
            // Remote branches: one shared egress, then one WAN-branch
            // draw per in-scope remote site, in site order.
            let in_scope = |s: usize| {
                let sid = SiteId(s as u32);
                sid != fs && self.topo.site_in_scope(fs, sid, scope)
            };
            if (0..site_count).any(in_scope) {
                if let Some(out) = self.topo.egress(fs, net, now, kind, bytes, stats) {
                    for s in (0..site_count).filter(|&s| in_scope(s)) {
                        let sid = SiteId(s as u32);
                        if self.topo.wan_drop(net, now) {
                            stats.record(SegmentClass::Wan, None, kind, bytes, true);
                        } else {
                            branches.push((sid, out + self.topo.wan_latency(fs, sid)));
                        }
                    }
                    if !branches.is_empty() {
                        // Multicast economy: the backbone carries one
                        // copy per send, however many branches survive.
                        stats.record(SegmentClass::Wan, None, kind, bytes, false);
                    }
                }
            }
        }

        let copies = (deliveries.len() + branches.len()).min(u32::MAX as usize) as u32;
        self.emit_net(kind, true, copies);
        for d in deliveries {
            self.push(
                d.at,
                fs,
                Ev::Packet {
                    from,
                    to: d.to,
                    packet: packet.clone(),
                },
            );
        }
        for (sid, t_in) in branches {
            self.push(
                t_in,
                sid,
                Ev::Ingress {
                    from,
                    site: sid,
                    packet: packet.clone(),
                    kind: IngressKind::Multicast { scope },
                },
            );
        }
    }

    fn emit_net(&self, kind: &'static str, multicast: bool, copies: u32) {
        self.tracer
            .emit_from(self.now.nanos(), self.host, || ProtocolEvent::NetPacket {
                kind,
                multicast,
                copies,
            });
    }

    /// Arms a timer to fire at `at` (clamped to now).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        let host = self.host;
        let site = self.topo.site_of(host);
        self.push(at.max(self.now), site, Ev::Timer { host, token });
    }

    /// Arms a timer to fire after `d`.
    pub fn set_timer_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.set_timer_at(at, token);
    }

    /// Joins the calling host to `group` (membership lives with the
    /// host's site, on the host's own shard).
    pub fn join(&mut self, group: GroupId) {
        let site = self.topo.site_of(self.host);
        self.shard.members[site.raw() as usize]
            .entry(group)
            .or_default()
            .insert(self.host);
    }

    /// Removes the calling host from `group`.
    pub fn leave(&mut self, group: GroupId) {
        let site = self.topo.site_of(self.host);
        if let Some(m) = self.shard.members[site.raw() as usize].get_mut(&group) {
            m.remove(&self.host);
        }
    }
}

/// Runs `host`'s actor with a [`Ctx`] over its shard.
fn dispatch(
    topo: &Topology,
    shard: &mut Shard,
    at: SimTime,
    host: HostId,
    f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>),
) {
    let idx = host.raw() as usize;
    if shard.crashed[idx] {
        return;
    }
    // Take the actor out of its slot (a pointer move, not a hash
    // re-insert) so it can borrow the rest of the shard mutably.
    let Some(mut actor) = shard.actors[idx].take() else {
        return;
    };
    let mut rng = shard.rngs[idx].take().expect("host rng");
    let tracer = shard.tracer.clone();
    let mut ctx = Ctx {
        host,
        now: at,
        topo,
        shard,
        rng: &mut rng,
        tracer: &tracer,
    };
    f(actor.as_mut(), &mut ctx);
    shard.actors[idx] = Some(actor);
    shard.rngs[idx] = Some(rng);
}

/// Destination half of a cross-site transmission: the copy crosses the
/// site's inbound tail circuit, then fans out over the LAN to the
/// unicast target or to the site's *current* members of the group —
/// membership is evaluated here, on the owning shard, totally ordered
/// against the site's joins and leaves.
fn ingress(
    topo: &Topology,
    shard: &mut Shard,
    at: SimTime,
    from: HostId,
    site: SiteId,
    packet: Packet,
    kind: IngressKind,
) {
    let bytes = packet.encoded_len();
    let pkind = packet.kind();
    let si = site.raw() as usize;
    let mut deliveries: Vec<Delivery> = Vec::new();
    {
        let Shard {
            members,
            nets,
            stats,
            ..
        } = shard;
        let net = nets[si].as_mut().expect("site net on owning shard");
        if let Some(t_lan) = topo.ingress_tail(site, net, at, pkind, bytes, stats) {
            match kind {
                IngressKind::Unicast { to } => {
                    deliveries.extend(topo.lan_delivery(site, net, t_lan, to, pkind, bytes, stats));
                }
                IngressKind::Multicast { .. } => {
                    if let Some(set) = members[si].get(&packet.group()) {
                        for &m in set {
                            if m == from {
                                continue;
                            }
                            deliveries.extend(
                                topo.lan_delivery(site, net, t_lan, m, pkind, bytes, stats),
                            );
                        }
                    }
                }
            }
        }
    }
    // Pushes made while evaluating a site's ingress are keyed to the
    // site's pseudo-entity: placement-invariant like everything else.
    let entity = (topo.host_count() + si) as u64;
    for d in deliveries {
        shard.push_from(
            entity,
            d.at,
            site,
            Ev::Packet {
                from,
                to: d.to,
                packet: packet.clone(),
            },
        );
    }
}

/// Processes one event on its shard. With `capture` set (worker
/// threads), trace records emitted by the handler are collected into the
/// shard's buffer for the coordinator's deterministic merge.
fn process(topo: &Topology, shard: &mut Shard, at: SimTime, key: u128, ev: Ev, capture: bool) {
    shard.events += 1;
    shard.last_at = at;
    match ev {
        Ev::Packet { from, to, packet } => {
            // Link-level fault injection: a delivery whose endpoints sit
            // in different partitions is dropped. The partition vector is
            // replicated identically on every shard, so the decision is
            // placement-invariant (see [`World::partition`]).
            if shard.partition[from.raw() as usize] == shard.partition[to.raw() as usize] {
                dispatch(topo, shard, at, to, |a, ctx| a.on_packet(ctx, from, packet));
            }
        }
        Ev::Timer { host, token } => {
            dispatch(topo, shard, at, host, |a, ctx| a.on_timer(ctx, token));
        }
        Ev::Ingress {
            from,
            site,
            packet,
            kind,
        } => ingress(topo, shard, at, from, site, packet, kind),
    }
    if capture {
        let recs = capture_take(at, key);
        if !recs.is_empty() {
            shard.trace_buf.extend(recs);
        }
    }
}

/// Drains one shard's due events up to (exclusive) `end` — one epoch
/// window. Runs on a worker thread; records its own wall-clock busy
/// time for the stall gauge.
fn run_window(topo: &Topology, shard: &mut Shard, end: SimTime) {
    let t0 = std::time::Instant::now();
    while shard.queue.next_at().is_some_and(|t| t < end) {
        shard.note_depth();
        let (at, key, ev) = shard.queue.pop_keyed().expect("next_at was Some");
        process(topo, shard, at, key, ev, true);
        shard.note_depth();
    }
    shard.busy_ns = t0.elapsed().as_nanos() as u64;
}

/// The simulation: topology + actors + sharded event queues.
///
/// [`HostId`]s are dense indices (the topology builder hands them out
/// sequentially), so the per-host tables — actors, RNG streams, crash
/// flags — are plain vectors: the per-event dispatch does array indexing
/// instead of hash lookups.
pub struct World {
    topo: Topology,
    shards: Vec<Shard>,
    shard_of_site: Arc<Vec<usize>>,
    shard_of_host: Vec<usize>,
    order: Vec<HostId>,
    now: SimTime,
    started: bool,
    seed: u64,
    lookahead: Duration,
    tracer: Tracer,
    gauge_registry: Option<Arc<MetricsRegistry>>,
    epoch_stall_ns: u64,
    /// Which ledger [`World::bundle_stats`] reports `datagrams()` from.
    /// Both ledgers are always metered, so the event stream, traces, and
    /// `NetStats` are byte-identical across modes.
    bundle: BundleMode,
}

impl World {
    /// Creates a world over `topo`, fully determined by `seed`, on the
    /// default event-queue backend (see [`QueueBackend::from_env`]) and
    /// the default shard count (`LBRM_SIM_SHARDS`, see
    /// [`World::parse_shards`]; 1 when unset).
    pub fn new(topo: Topology, seed: u64) -> World {
        World::with_backend(topo, seed, QueueBackend::from_env())
    }

    /// Creates a world on an explicit event-queue backend — the hook the
    /// wheel-vs-heap differential tests use. Shard count still comes
    /// from the environment.
    pub fn with_backend(topo: Topology, seed: u64, backend: QueueBackend) -> World {
        let shards = Self::shards_from_env();
        World::with_options(topo, seed, backend, shards)
    }

    /// Creates a world with everything explicit: queue backend and
    /// requested shard count. The effective count is clamped to the
    /// number of sites, and falls back to 1 when the topology offers no
    /// positive cross-shard lookahead (conservative synchronization
    /// would deadlock on zero-latency links).
    pub fn with_options(topo: Topology, seed: u64, backend: QueueBackend, shards: usize) -> World {
        let sites = topo.site_count();
        let hosts = topo.host_count();
        let mut n = shards.clamp(1, sites.max(1));
        let assign = |n: usize| -> Vec<usize> { (0..sites).map(|s| s % n).collect() };
        let mut map = assign(n);
        let mut lookahead = Duration::ZERO;
        if n > 1 {
            match topo.lookahead(&map) {
                Some(l) if l > Duration::ZERO => lookahead = l,
                _ => {
                    n = 1;
                    map = assign(1);
                }
            }
        }
        let shard_of_site = Arc::new(map);
        let mut shard_vec: Vec<Shard> = (0..n)
            .map(|i| Shard::new(i, shard_of_site.clone(), backend, hosts, sites))
            .collect();
        for s in 0..sites {
            let sid = SiteId(s as u32);
            let k = shard_of_site[s];
            shard_vec[k].nets[s] = Some(SiteNet::new(
                topo.site_params(sid),
                topo.wan_loss_model(),
                site_rng(seed, s as u64),
            ));
        }
        let shard_of_host = (0..hosts)
            .map(|h| shard_of_site[topo.site_of(HostId(h as u64)).raw() as usize])
            .collect();
        World {
            topo,
            shards: shard_vec,
            shard_of_site,
            shard_of_host,
            order: Vec::new(),
            now: SimTime::ZERO,
            started: false,
            seed,
            lookahead,
            tracer: Tracer::disabled(),
            gauge_registry: None,
            epoch_stall_ns: 0,
            bundle: BundleMode::from_env(),
        }
    }

    /// Parses an `LBRM_SIM_SHARDS` value: a positive integer, `"sites"`
    /// (one shard per site), or empty (= 1). `None` for anything else.
    pub fn parse_shards(v: &str) -> Option<usize> {
        let t = v.trim();
        if t.is_empty() {
            return Some(1);
        }
        if t.eq_ignore_ascii_case("sites") {
            return Some(usize::MAX);
        }
        match t.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => None,
        }
    }

    /// Reads `LBRM_SIM_SHARDS`, panicking on anything
    /// [`parse_shards`](World::parse_shards) rejects — mirroring the
    /// strict [`QueueBackend::from_env`]: a typo must fail loudly, not
    /// silently run unsharded.
    fn shards_from_env() -> usize {
        match std::env::var("LBRM_SIM_SHARDS") {
            Err(std::env::VarError::NotPresent) => 1,
            Err(e) => panic!("LBRM_SIM_SHARDS is not valid unicode: {e}"),
            Ok(v) => World::parse_shards(&v).unwrap_or_else(|| {
                panic!(
                    "LBRM_SIM_SHARDS must be a positive integer or \"sites\" (or unset), got {v:?}"
                )
            }),
        }
    }

    /// The event-queue backend this world runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.shards[0].queue.backend()
    }

    /// Number of shards actually in use (after clamping and the
    /// zero-lookahead fallback).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative-synchronization window (zero when unsharded).
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// Total events processed so far, across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Cumulative wall-clock time the epoch coordinator spent waiting on
    /// the slowest worker (plus barrier overhead), in nanoseconds.
    /// Always zero for unsharded runs.
    pub fn epoch_stall_ns(&self) -> u64 {
        self.epoch_stall_ns
    }

    /// Attaches a protocol-event tracer: every simulated transmission is
    /// reported as a [`ProtocolEvent::NetPacket`] (wire kind, multicast
    /// flag, copies that survived the loss model). Disabled by default.
    /// The tracer's sink is re-wrapped via [`World::wrap_sink`] so
    /// sharded runs keep the serial emission order.
    pub fn set_trace(&mut self, tracer: Tracer) {
        let wrapped = match tracer.sink() {
            Some(s) => Tracer::to(self.wrap_sink(s)),
            None => Tracer::disabled(),
        };
        self.tracer = wrapped.clone();
        for sh in &mut self.shards {
            sh.tracer = wrapped.clone();
        }
    }

    /// Wraps a trace sink for use by actors running inside this world.
    ///
    /// Sharded worlds process events on worker threads, so a sink fed
    /// directly from actor code would observe records in worker order.
    /// The wrapper buffers worker-side records and the epoch coordinator
    /// forwards them in the deterministic serial order; outside worker
    /// threads (and for single-shard worlds, where this returns the sink
    /// unchanged) records pass straight through. Machines whose tracers
    /// write to shared sinks must route them through here.
    pub fn wrap_sink(&self, inner: Arc<dyn TraceSink>) -> Arc<dyn TraceSink> {
        if self.shards.len() == 1 {
            inner
        } else {
            crate::shard::MuxedSink::wrap(inner)
        }
    }

    /// Attaches a registry that receives simulator gauges — the
    /// event-queue depth (current and high-water, aggregated across
    /// shards), per-shard depths for sharded runs, epoch stall time, and
    /// per-link tail queue backlogs — whenever a `run_*` call returns
    /// (or [`flush_gauges`](World::flush_gauges) is called directly).
    pub fn set_gauges(&mut self, registry: Arc<MetricsRegistry>) {
        self.gauge_registry = Some(registry);
    }

    /// Highest event-queue depth seen on any single shard (cheap: one
    /// compare per step keeps the hot loop registry-free). Only
    /// comparable between runs with equal shard counts — a split queue
    /// peaks lower than a global one.
    pub fn queue_depth_max(&self) -> usize {
        self.shards.iter().map(|s| s.depth_max).max().unwrap_or(0)
    }

    /// Current event-queue depth, summed across shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Writes the simulator gauges into the attached registry (no-op
    /// without one): `sim.queue_depth` (sum over shards),
    /// `sim.queue_depth_max` (max over shards' high-water marks),
    /// `sim.shard<K>.queue_depth{,_max}` and `sim.epoch_stall_ns` for
    /// sharded runs, and `sim.link.s<N>.tail_{in,out}_backlog_max_ns`
    /// for every site whose tail circuit ever queued.
    pub fn flush_gauges(&mut self) {
        let Some(reg) = &self.gauge_registry else {
            return;
        };
        reg.set_gauge("sim.queue_depth", self.queue_depth() as u64);
        reg.set_gauge("sim.queue_depth_max", self.queue_depth_max() as u64);
        if self.shards.len() > 1 {
            for sh in &self.shards {
                reg.set_gauge(
                    &format!("sim.shard{}.queue_depth", sh.idx),
                    sh.queue.len() as u64,
                );
                reg.set_gauge(
                    &format!("sim.shard{}.queue_depth_max", sh.idx),
                    sh.depth_max as u64,
                );
            }
            reg.set_gauge("sim.epoch_stall_ns", self.epoch_stall_ns);
        }
        for sh in &self.shards {
            for (s, net) in sh.nets.iter().enumerate() {
                let Some(net) = net else { continue };
                if net.tail_in_backlog_max > Duration::ZERO {
                    reg.set_gauge(
                        &format!("sim.link.s{s}.tail_in_backlog_max_ns"),
                        net.tail_in_backlog_max.as_nanos() as u64,
                    );
                }
                if net.tail_out_backlog_max > Duration::ZERO {
                    reg.set_gauge(
                        &format!("sim.link.s{s}.tail_out_backlog_max_ns"),
                        net.tail_out_backlog_max.as_nanos() as u64,
                    );
                }
            }
        }
    }

    /// Installs an actor on `host`. Replaces any existing actor.
    ///
    /// # Panics
    ///
    /// If `host` was not created by this world's topology builder (the
    /// sharded world routes by site, so every host needs a site).
    pub fn add_actor(&mut self, host: HostId, actor: impl Actor) {
        let idx = host.raw() as usize;
        assert!(
            idx < self.topo.host_count(),
            "host {host} is not in the topology"
        );
        let k = self.shard_of_host[idx];
        let sh = &mut self.shards[k];
        if sh.actors[idx].replace(Box::new(actor)).is_none() {
            self.order.push(host);
        }
        if sh.rngs[idx].is_none() {
            // Distinct, deterministic stream per host.
            sh.rngs[idx] = Some(SmallRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(host.raw()),
            ));
        }
    }

    /// Joins `host` to `group` from outside the actor (setup convenience).
    pub fn join(&mut self, host: HostId, group: GroupId) {
        let site = self.topo.site_of(host);
        let k = self.shard_of_site[site.raw() as usize];
        self.shards[k].members[site.raw() as usize]
            .entry(group)
            .or_default()
            .insert(host);
    }

    /// Arms a timer for `host` from outside the actor — used by harness
    /// code that schedules application work after the world has started.
    pub fn schedule_timer(&mut self, host: HostId, at: SimTime, token: u64) {
        let site = self.topo.site_of(host);
        let k = self.shard_of_host[host.raw() as usize];
        let at = at.max(self.now);
        self.shards[k].push_from(host.raw(), at, site, Ev::Timer { host, token });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics so far, merged across shards.
    pub fn stats(&self) -> NetStats {
        let mut out = NetStats::default();
        for sh in &self.shards {
            out.merge(&sh.stats);
        }
        out
    }

    /// The bundle mode [`World::bundle_stats`] reports under (from
    /// `LBRM_BUNDLE` by default).
    pub fn bundle_mode(&self) -> BundleMode {
        self.bundle
    }

    /// Overrides the reported bundle mode — the env-independent hook the
    /// differential tests use. Only the reporting ledger changes; the
    /// simulation itself is identical in both modes.
    pub fn set_bundle_mode(&mut self, mode: BundleMode) {
        self.bundle = mode;
    }

    /// Bundle-framing statistics so far, merged across every host's
    /// meter: what the wire's `BundleBuilder` would have put on the wire
    /// for this run, in both the bundled and unbundled ledgers.
    /// `datagrams()`/`wire_bytes()` report per [`World::bundle_mode`].
    pub fn bundle_stats(&self) -> BundleStats {
        let mut out = BundleStats {
            mode: self.bundle,
            ..BundleStats::default()
        };
        for sh in &self.shards {
            for m in &sh.meters {
                out.merge(m.stats());
            }
        }
        out
    }

    /// Immutable access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Marks a host as crashed: it receives no packets or timers and its
    /// pending timers are suppressed while down.
    pub fn crash(&mut self, host: HostId) {
        let idx = host.raw() as usize;
        let k = self.shard_of_host[idx];
        self.shards[k].crashed[idx] = true;
    }

    /// Revives a crashed host. Packets and timers scheduled while it was
    /// down are gone; new ones are delivered normally.
    pub fn revive(&mut self, host: HostId) {
        let idx = host.raw() as usize;
        let k = self.shard_of_host[idx];
        self.shards[k].crashed[idx] = false;
    }

    /// Splits the network: the listed hosts move into a fresh partition.
    /// Packets between a host inside the set and one outside it are
    /// dropped at delivery time; traffic *within* either side flows
    /// normally. Repeated calls carve out further mutually-isolated
    /// groups. Packets already in flight across the cut when the call is
    /// made are dropped on arrival.
    ///
    /// Deterministic under sharding: the partition ids are replicated
    /// identically on every shard and the drop test is a pure function
    /// of them, so the verdict does not depend on which shard processes
    /// the delivery. Call only between `run_*` calls (the sharded engine
    /// mutates shard state on worker threads mid-run).
    ///
    /// # Panics
    ///
    /// If any host is not in the topology.
    pub fn partition(&mut self, hosts: &[HostId]) {
        for &h in hosts {
            assert!(
                (h.raw() as usize) < self.topo.host_count(),
                "host {h} is not in the topology"
            );
        }
        let part = self.shards[0].partition.iter().copied().max().unwrap_or(0) + 1;
        for sh in &mut self.shards {
            for &h in hosts {
                sh.partition[h.raw() as usize] = part;
            }
        }
    }

    /// Heals every partition: all hosts rejoin one connected network.
    /// Packets sent after the heal flow normally; packets dropped while
    /// the cut was up stay lost.
    pub fn heal(&mut self) {
        for sh in &mut self.shards {
            sh.partition.iter_mut().for_each(|p| *p = 0);
        }
    }

    /// Restarts `host` with a *fresh* actor (process restart semantics):
    /// the old actor — and all its in-memory state — is discarded, the
    /// crash flag is cleared, and if the world has already started the
    /// new actor's [`Actor::on_start`] runs immediately at the current
    /// virtual time. Contrast [`World::revive`], which brings the old
    /// actor back with its pre-crash state intact.
    ///
    /// The host keeps its per-host RNG stream (the stream belongs to the
    /// host slot, not the process incarnation), so replay determinism is
    /// unaffected.
    ///
    /// # Panics
    ///
    /// If `host` is not in the topology.
    pub fn restart(&mut self, host: HostId, actor: impl Actor) {
        let idx = host.raw() as usize;
        assert!(
            idx < self.topo.host_count(),
            "host {host} is not in the topology"
        );
        let k = self.shard_of_host[idx];
        let sh = &mut self.shards[k];
        sh.crashed[idx] = false;
        if sh.actors[idx].replace(Box::new(actor)).is_none() {
            self.order.push(host);
        }
        if sh.rngs[idx].is_none() {
            sh.rngs[idx] = Some(SmallRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(host.raw()),
            ));
        }
        if self.started {
            let topo = &self.topo;
            dispatch(topo, &mut self.shards[k], self.now, host, |a, ctx| {
                a.on_start(ctx)
            });
            self.drain_outboxes();
        }
    }

    /// `true` if the host is currently crashed.
    pub fn is_crashed(&self, host: HostId) -> bool {
        let idx = host.raw() as usize;
        self.shard_of_host
            .get(idx)
            .is_some_and(|&k| self.shards[k].crashed[idx])
    }

    /// Downcasts the actor on `host`.
    ///
    /// # Panics
    ///
    /// If the host has no actor of type `T`.
    pub fn actor<T: Actor>(&self, host: HostId) -> &T {
        let idx = host.raw() as usize;
        let k = *self.shard_of_host.get(idx).expect("no actor on host");
        let a: &dyn Any = self.shards[k].actors[idx]
            .as_ref()
            .expect("no actor on host")
            .as_ref();
        a.downcast_ref::<T>().expect("actor type mismatch")
    }

    /// Mutable downcast of the actor on `host`.
    ///
    /// # Panics
    ///
    /// If the host has no actor of type `T`.
    pub fn actor_mut<T: Actor>(&mut self, host: HostId) -> &mut T {
        let idx = host.raw() as usize;
        let k = *self.shard_of_host.get(idx).expect("no actor on host");
        let a: &mut dyn Any = self.shards[k].actors[idx]
            .as_mut()
            .expect("no actor on host")
            .as_mut();
        a.downcast_mut::<T>().expect("actor type mismatch")
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let hosts = self.order.clone();
        for host in hosts {
            let k = self.shard_of_host[host.raw() as usize];
            let topo = &self.topo;
            dispatch(topo, &mut self.shards[k], self.now, host, |a, ctx| {
                a.on_start(ctx)
            });
            self.drain_outboxes();
        }
    }

    /// Routes every shard's pending cross-shard mail into the
    /// destination queues. Cheap when nothing is pending.
    fn drain_outboxes(&mut self) {
        let mut mails = Vec::new();
        for sh in &mut self.shards {
            if !sh.outbox.is_empty() {
                mails.append(&mut sh.outbox);
            }
        }
        for m in mails {
            self.shards[m.shard].queue.push_keyed(m.at, m.key, m.ev);
        }
    }

    /// Runs one event; returns `false` when every queue is empty.
    ///
    /// Sharded worlds step serially here — the globally least `(at,
    /// key)` event is popped wherever it lives — so step-driven loops
    /// observe the exact single-shard order; `run_until` is where the
    /// epoch parallelism happens.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        if self.shards.len() == 1 {
            let topo = &self.topo;
            let shard = &mut self.shards[0];
            shard.note_depth();
            let Some((at, key, ev)) = shard.queue.pop_keyed() else {
                return false;
            };
            debug_assert!(at >= self.now, "time must be monotonic");
            self.now = at.max(self.now);
            process(topo, shard, at, key, ev, false);
            // Sample again after the handler ran: a fan-out (multicast
            // burst, retransmission storm) peaks *between* pops, and the
            // two backends must report the same high-water mark.
            shard.note_depth();
            return true;
        }
        // Global-min pop: take the tied-for-earliest head from each
        // shard, keep the least key, put the rest back.
        let min_at = self
            .shards
            .iter_mut()
            .filter_map(|s| s.queue.next_at())
            .min();
        let Some(min_at) = min_at else {
            return false;
        };
        let mut popped = Vec::new();
        for (i, sh) in self.shards.iter_mut().enumerate() {
            if sh.queue.next_at() == Some(min_at) {
                let (at, key, ev) = sh.queue.pop_keyed().expect("head was due");
                popped.push((i, at, key, ev));
            }
        }
        popped.sort_by_key(|p| p.2);
        let mut it = popped.into_iter();
        let (wi, at, key, ev) = it.next().expect("at least one shard was due");
        for (i, at2, key2, ev2) in it {
            self.shards[i].queue.push_keyed(at2, key2, ev2);
        }
        debug_assert!(at >= self.now, "time must be monotonic");
        self.now = at.max(self.now);
        let topo = &self.topo;
        let shard = &mut self.shards[wi];
        shard.note_depth();
        process(topo, shard, at, key, ev, false);
        shard.note_depth();
        self.drain_outboxes();
        true
    }

    /// Conservative-window engine for sharded worlds: per epoch, find
    /// the earliest pending event `t_min`, open the window
    /// `[t_min, min(t_min + lookahead, until + 1ns))`, let every shard
    /// drain its due events on worker threads, then exchange cross-shard
    /// mail and forward buffered trace records in the deterministic
    /// merge order.
    fn run_epochs(&mut self, until: SimTime) {
        let la_nanos = self.lookahead.as_nanos() as u64;
        debug_assert!(la_nanos > 0, "sharded world requires positive lookahead");
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.shards.len());
        let chunk = self.shards.len().div_ceil(workers);
        loop {
            let t_min = self
                .shards
                .iter_mut()
                .filter_map(|s| s.queue.next_at())
                .min();
            let Some(t_min) = t_min else { break };
            if t_min > until {
                break;
            }
            let end = SimTime::from_nanos(
                t_min
                    .nanos()
                    .saturating_add(la_nanos)
                    .min(until.nanos().saturating_add(1)),
            );
            let wall = std::time::Instant::now();
            let topo = &self.topo;
            let shards = &mut self.shards;
            std::thread::scope(|scope| {
                for sh_chunk in shards.chunks_mut(chunk) {
                    scope.spawn(move || {
                        capture_activate();
                        for sh in sh_chunk {
                            run_window(topo, sh, end);
                        }
                    });
                }
            });
            let busy_max = self
                .shards
                .chunks(chunk)
                .map(|c| c.iter().map(|s| s.busy_ns).sum::<u64>())
                .max()
                .unwrap_or(0);
            self.epoch_stall_ns += (wall.elapsed().as_nanos() as u64).saturating_sub(busy_max);
            if let Some(last) = self.shards.iter().map(|s| s.last_at).max() {
                self.now = self.now.max(last);
            }
            self.drain_outboxes();
            if self.shards.iter().any(|sh| !sh.trace_buf.is_empty()) {
                let streams = self
                    .shards
                    .iter_mut()
                    .map(|sh| std::mem::take(&mut sh.trace_buf))
                    .collect();
                forward_merged(streams);
            }
        }
    }

    /// Runs until virtual time reaches `until` or the queues drain.
    /// Events at exactly `until` are processed.
    pub fn run_until(&mut self, until: SimTime) {
        self.start_if_needed();
        if self.shards.len() == 1 {
            loop {
                match self.shards[0].queue.next_at() {
                    Some(at) if at <= until => {
                        self.step();
                    }
                    _ => break,
                }
            }
        } else {
            self.run_epochs(until);
        }
        self.now = self.now.max(until);
        self.flush_gauges();
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Runs until the event queues are empty or `limit` is hit (the
    /// clock is left at the last processed event, not advanced to
    /// `limit`).
    pub fn run_until_idle(&mut self, limit: SimTime) {
        self.start_if_needed();
        if self.shards.len() == 1 {
            while let Some(at) = self.shards[0].queue.next_at() {
                if at > limit {
                    break;
                }
                self.step();
            }
        } else {
            self.run_epochs(limit);
        }
        self.flush_gauges();
    }

    /// A fresh RNG derived from the world seed and `salt` — for scenario
    /// setup code that wants determinism without threading seeds around.
    ///
    /// Derivation is a pure function of `(seed, salt)` (a splitmix64
    /// finalizer), so calling this never perturbs the network RNG: two
    /// runs that differ only in how many setup-time `derived_rng` calls
    /// they make see identical loss decisions and replay identically.
    pub fn derived_rng(&self, salt: u64) -> SmallRng {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }
}

/// Per-site RNG stream, a pure function of `(seed, site)` — the draws a
/// site's traffic makes are independent of every other site's and of
/// the site→shard assignment.
fn site_rng(seed: u64, site: u64) -> SmallRng {
    let mut z =
        (seed ^ 0x7369_7465_6e65_7473).wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{SiteParams, TopologyBuilder};
    use bytes::Bytes;
    use lbrm_wire::{EpochId, Seq, SourceId};

    const GROUP: GroupId = GroupId(7);

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GROUP,
            source: SourceId(1),
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"x"),
        }
    }

    /// Emits one data packet per second, three times.
    struct Beacon {
        sent: u32,
    }

    impl Actor for Beacon {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join(GROUP);
            ctx.set_timer_in(Duration::from_secs(1), 0);
        }

        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: HostId, _p: Packet) {}

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.sent += 1;
            ctx.send_multicast(TtlScope::Global, data(self.sent));
            if self.sent < 3 {
                ctx.set_timer_in(Duration::from_secs(1), 0);
            }
        }
    }

    /// Records every received packet with its arrival time.
    #[derive(Default)]
    struct Sink {
        got: Vec<(SimTime, u32)>,
    }

    impl Actor for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join(GROUP);
        }

        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: HostId, p: Packet) {
            if let Packet::Data { seq, .. } = p {
                self.got.push((ctx.now(), seq.raw()));
            }
        }
    }

    fn build() -> (World, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let tx = b.host(s0);
        let rx = b.host(s1);
        let mut w = World::new(b.build(), 99);
        w.add_actor(tx, Beacon { sent: 0 });
        w.add_actor(rx, Sink::default());
        (w, tx, rx)
    }

    #[test]
    fn multicast_beacon_reaches_sink() {
        let (mut w, tx, rx) = build();
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.actor::<Beacon>(tx).sent, 3);
        let sink = w.actor::<Sink>(rx);
        assert_eq!(sink.got.len(), 3);
        assert_eq!(
            sink.got.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Arrivals are 1 s apart, offset by path latency.
        let lat = w.topology().base_latency(tx, rx);
        assert_eq!(sink.got[0].0, SimTime::from_secs(1) + lat);
        assert_eq!(sink.got[1].0, SimTime::from_secs(2) + lat);
    }

    #[test]
    fn crash_suppresses_delivery_and_timers() {
        let (mut w, _tx, rx) = build();
        w.crash(rx);
        w.run_until(SimTime::from_secs(10));
        assert!(w.actor::<Sink>(rx).got.is_empty());
        w.revive(rx);
        assert!(!w.is_crashed(rx));
    }

    #[test]
    fn crash_mid_run_loses_only_later_packets() {
        let (mut w, _tx, rx) = build();
        w.run_until(SimTime::from_millis(1500)); // first beacon delivered
        w.crash(rx);
        w.run_until(SimTime::from_millis(2500)); // second suppressed
        w.revive(rx);
        w.run_until(SimTime::from_secs(10)); // third delivered
        let got: Vec<u32> = w.actor::<Sink>(rx).got.iter().map(|(_, s)| *s).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn restart_discards_state_where_revive_keeps_it() {
        // Revive: the sink keeps what it saw before the crash.
        let (mut w, _tx, rx) = build();
        w.run_until(SimTime::from_millis(1500)); // first beacon delivered
        w.crash(rx);
        w.run_until(SimTime::from_millis(2500)); // second suppressed
        w.revive(rx);
        w.run_until(SimTime::from_secs(10));
        let got: Vec<u32> = w.actor::<Sink>(rx).got.iter().map(|(_, s)| *s).collect();
        assert_eq!(got, vec![1, 3], "revive resumes with pre-crash state");

        // Restart: same schedule, but the host comes back as a fresh
        // process — the pre-crash delivery is gone from its memory.
        let (mut w, _tx, rx) = build();
        w.run_until(SimTime::from_millis(1500));
        w.crash(rx);
        w.run_until(SimTime::from_millis(2500));
        w.restart(rx, Sink::default());
        assert!(!w.is_crashed(rx));
        w.run_until(SimTime::from_secs(10));
        let got: Vec<u32> = w.actor::<Sink>(rx).got.iter().map(|(_, s)| *s).collect();
        assert_eq!(got, vec![3], "restart comes back empty-handed");
    }

    #[test]
    fn partition_blocks_cross_group_delivery_until_heal() {
        let (mut w, _tx, rx) = build();
        w.partition(&[rx]);
        w.run_until(SimTime::from_millis(1500)); // first beacon dropped at the cut
        assert!(w.actor::<Sink>(rx).got.is_empty());
        w.heal();
        w.run_until(SimTime::from_secs(10)); // later beacons flow again
        let got: Vec<u32> = w.actor::<Sink>(rx).got.iter().map(|(_, s)| *s).collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn partition_groups_keep_internal_traffic() {
        // Sender and one receiver are cut away together: traffic inside
        // the cut-away group still flows; the host left behind hears
        // nothing.
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let tx = b.host(s0);
        let near = b.host(s0);
        let far = b.host(s0);
        let mut w = World::new(b.build(), 11);
        w.add_actor(tx, Beacon { sent: 0 });
        w.add_actor(near, Sink::default());
        w.add_actor(far, Sink::default());
        w.partition(&[tx, near]);
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.actor::<Sink>(near).got.len(), 3);
        assert!(w.actor::<Sink>(far).got.is_empty());
    }

    /// Partition decisions are placement-invariant: a mid-run cut and
    /// heal replays identically for any shard count, on either backend.
    #[test]
    fn partition_replays_identically_across_shards() {
        use crate::loss::LossModel;
        let run = |backend: QueueBackend, shards: usize| {
            let mut b = TopologyBuilder::new();
            let s0 = b.site(SiteParams::default());
            let s1 = b.site(SiteParams {
                tail_in_loss: LossModel::rate(0.25),
                jitter: Duration::from_millis(3),
                ..SiteParams::default()
            });
            let s2 = b.site(SiteParams::nearby());
            let s3 = b.site(SiteParams::distant());
            b.wan_loss(LossModel::rate(0.05));
            let tx = b.host(s0);
            let rxs: Vec<HostId> = [s0, s1, s2, s3].iter().map(|&s| b.host(s)).collect();
            let mut w = World::with_options(b.build(), 777, backend, shards);
            w.add_actor(tx, Beacon { sent: 0 });
            for &rx in &rxs {
                w.add_actor(rx, Sink::default());
            }
            w.run_until(SimTime::from_millis(1500));
            w.partition(&[rxs[1], rxs[2]]);
            w.run_until(SimTime::from_millis(2500));
            w.heal();
            w.run_until(SimTime::from_secs(10));
            let got: Vec<Vec<(SimTime, u32)>> = rxs
                .iter()
                .map(|&rx| w.actor::<Sink>(rx).got.clone())
                .collect();
            (got, w.stats(), w.events_processed())
        };
        let base = run(QueueBackend::Wheel, 1);
        for shards in [2usize, 4] {
            assert_eq!(base, run(QueueBackend::Wheel, shards), "wheel x{shards}");
            assert_eq!(base, run(QueueBackend::Heap, shards), "heap x{shards}");
        }
    }

    #[test]
    fn derived_rng_does_not_perturb_lossy_replay() {
        use crate::loss::LossModel;
        use rand::Rng;

        // Two identically-seeded lossy runs that differ only in how many
        // setup-time derived_rng calls they make must see the same loss
        // decisions, deliveries, and NetStats.
        let run = |derived_calls: usize| {
            let mut b = TopologyBuilder::new();
            let s0 = b.site(SiteParams::default());
            let s1 = b.site(SiteParams {
                tail_in_loss: LossModel::rate(0.4),
                ..SiteParams::default()
            });
            let tx = b.host(s0);
            let rx = b.host(s1);
            let mut w = World::new(b.build(), 1234);
            w.add_actor(tx, Beacon { sent: 0 });
            w.add_actor(rx, Sink::default());
            for salt in 0..derived_calls as u64 {
                let _ = w.derived_rng(salt).random::<u64>();
            }
            w.run_until(SimTime::from_secs(10));
            (w.actor::<Sink>(rx).got.clone(), w.stats())
        };
        assert_eq!(run(0), run(5));
    }

    #[test]
    fn derived_rng_is_pure_in_seed_and_salt() {
        use rand::Rng;
        let (mut w, _, _) = build();
        let a: u64 = w.derived_rng(7).random();
        // Interleave other salts and advance the simulation; salt 7 must
        // still yield the same stream.
        let _ = w.derived_rng(8).random::<u64>();
        w.run_until(SimTime::from_secs(2));
        let b: u64 = w.derived_rng(7).random();
        assert_eq!(a, b);
        // Distinct salts give distinct streams.
        assert_ne!(a, w.derived_rng(9).random::<u64>());
    }

    #[test]
    fn wheel_and_heap_backends_replay_identically() {
        use crate::loss::LossModel;
        let run = |backend: QueueBackend| {
            let mut b = TopologyBuilder::new();
            let s0 = b.site(SiteParams::default());
            let s1 = b.site(SiteParams {
                tail_in_loss: LossModel::rate(0.3),
                ..SiteParams::default()
            });
            let tx = b.host(s0);
            let rx = b.host(s1);
            let mut w = World::with_backend(b.build(), 1234, backend);
            assert_eq!(w.queue_backend(), backend);
            w.add_actor(tx, Beacon { sent: 0 });
            w.add_actor(rx, Sink::default());
            w.run_until(SimTime::from_secs(10));
            (
                w.actor::<Sink>(rx).got.clone(),
                w.stats(),
                w.queue_depth_max(),
            )
        };
        assert_eq!(run(QueueBackend::Wheel), run(QueueBackend::Heap));
    }

    /// The tentpole guarantee: a fixed seed produces identical
    /// deliveries, stats, and event counts for *any* shard count, on
    /// either queue backend — here on a lossy, jittery 4-site topology
    /// exercising cross-shard multicast, unicast-free fan-out, and
    /// membership churn through the Ingress path.
    #[test]
    fn shard_counts_replay_identically() {
        use crate::loss::LossModel;
        let run = |backend: QueueBackend, shards: usize| {
            let mut b = TopologyBuilder::new();
            let s0 = b.site(SiteParams::default());
            let s1 = b.site(SiteParams {
                tail_in_loss: LossModel::rate(0.25),
                jitter: Duration::from_millis(3),
                ..SiteParams::default()
            });
            let s2 = b.site(SiteParams {
                lan_loss: LossModel::rate(0.1),
                ..SiteParams::nearby()
            });
            let s3 = b.site(SiteParams::distant());
            b.wan_loss(LossModel::rate(0.05));
            let tx = b.host(s0);
            let rxs: Vec<HostId> = [s0, s1, s1, s2, s3].iter().map(|&s| b.host(s)).collect();
            let mut w = World::with_options(b.build(), 4242, backend, shards);
            assert_eq!(w.shards(), shards.min(4));
            w.add_actor(tx, Beacon { sent: 0 });
            for &rx in &rxs {
                w.add_actor(rx, Sink::default());
            }
            w.run_until(SimTime::from_secs(10));
            let got: Vec<Vec<(SimTime, u32)>> = rxs
                .iter()
                .map(|&rx| w.actor::<Sink>(rx).got.clone())
                .collect();
            (got, w.stats(), w.events_processed())
        };
        let base = run(QueueBackend::Wheel, 1);
        for shards in [2usize, 4] {
            assert_eq!(base, run(QueueBackend::Wheel, shards), "wheel x{shards}");
            assert_eq!(base, run(QueueBackend::Heap, shards), "heap x{shards}");
        }
    }

    /// Satellite: gauges must aggregate across shards — depth as the sum
    /// of per-shard queue lengths, high-water as the max of per-shard
    /// maxima — with per-shard gauges and the stall clock alongside.
    #[test]
    fn gauges_aggregate_across_shards() {
        let mut b = TopologyBuilder::new();
        let sites: Vec<SiteId> = (0..4).map(|_| b.site(SiteParams::default())).collect();
        let tx = b.host(sites[0]);
        let rxs: Vec<HostId> = sites[1..].iter().map(|&s| b.host(s)).collect();
        let mut w = World::with_options(b.build(), 7, QueueBackend::Wheel, 2);
        assert_eq!(w.shards(), 2);
        let reg = Arc::new(MetricsRegistry::default());
        w.set_gauges(reg.clone());
        w.add_actor(tx, Beacon { sent: 0 });
        for &rx in &rxs {
            w.add_actor(rx, Sink::default());
        }
        // Stop mid-run so queues still hold future events (the next
        // beacon timer at least).
        w.run_until(SimTime::from_millis(1500));
        let depth = reg.gauge("sim.queue_depth");
        assert!(depth > 0, "pending events expected mid-run");
        assert_eq!(depth, w.queue_depth() as u64);
        assert_eq!(
            depth,
            reg.gauge("sim.shard0.queue_depth") + reg.gauge("sim.shard1.queue_depth"),
            "sum over shards"
        );
        let max = reg.gauge("sim.queue_depth_max");
        assert_eq!(max, w.queue_depth_max() as u64);
        assert_eq!(
            max,
            reg.gauge("sim.shard0.queue_depth_max")
                .max(reg.gauge("sim.shard1.queue_depth_max")),
            "max of per-shard maxima"
        );
        assert!(
            reg.gauges().contains_key("sim.epoch_stall_ns"),
            "stall gauge published for sharded runs"
        );
    }

    #[test]
    fn shards_env_forms_parse_strictly() {
        assert_eq!(World::parse_shards(""), Some(1));
        assert_eq!(World::parse_shards("1"), Some(1));
        assert_eq!(World::parse_shards(" 8 "), Some(8));
        assert_eq!(World::parse_shards("sites"), Some(usize::MAX));
        assert_eq!(World::parse_shards("SITES"), Some(usize::MAX));
        assert_eq!(World::parse_shards("0"), None);
        assert_eq!(World::parse_shards("-2"), None);
        assert_eq!(World::parse_shards("many"), None);
    }

    #[test]
    fn shard_count_clamps_and_falls_back() {
        // More shards than sites clamps to the site count.
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let _ = (b.host(s0), b.host(s1));
        let w = World::with_options(b.build(), 1, QueueBackend::Wheel, 64);
        assert_eq!(w.shards(), 2);
        assert!(w.lookahead() > Duration::ZERO);

        // A zero-latency topology offers no lookahead: forced serial.
        let mut b = TopologyBuilder::new();
        let z = SiteParams {
            lan_delay: Duration::ZERO,
            tail_delay: Duration::ZERO,
            wan_delay: Duration::ZERO,
            ..SiteParams::default()
        };
        let s0 = b.site(z.clone());
        let s1 = b.site(z);
        let _ = (b.host(s0), b.host(s1));
        let w = World::with_options(b.build(), 1, QueueBackend::Wheel, 2);
        assert_eq!(w.shards(), 1);
        assert_eq!(w.lookahead(), Duration::ZERO);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut w, _tx, rx) = build();
            w.run_until(SimTime::from_secs(10));
            w.actor::<Sink>(rx).got.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let (mut w, _, _) = build();
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stats_account_multicast() {
        let (mut w, _, _) = build();
        w.run_until(SimTime::from_secs(10));
        let wan = w
            .stats()
            .class_kind(crate::stats::SegmentClass::Wan, "data");
        assert_eq!(wan.carried, 3);
    }

    #[test]
    fn timer_tokens_roundtrip() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_in(Duration::from_secs(2), 22);
                ctx.set_timer_in(Duration::from_secs(1), 11);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: HostId, _: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut b = TopologyBuilder::new();
        let s = b.site(SiteParams::default());
        let h = b.host(s);
        let mut w = World::new(b.build(), 1);
        w.add_actor(h, T { fired: vec![] });
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.actor::<T>(h).fired, vec![11, 22]);
    }

    #[test]
    fn leave_stops_delivery() {
        struct Leaver {
            got: u32,
        }
        impl Actor for Leaver {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(GROUP);
            }
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, _: HostId, _: Packet) {
                self.got += 1;
                ctx.leave(GROUP);
            }
        }
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let tx = b.host(s0);
        let rx = b.host(s0);
        let mut w = World::new(b.build(), 5);
        w.add_actor(tx, Beacon { sent: 0 });
        w.add_actor(rx, Leaver { got: 0 });
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.actor::<Leaver>(rx).got, 1);
    }
}
