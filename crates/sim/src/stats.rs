//! Traffic accounting.
//!
//! The paper's evaluation counts packets crossing particular *classes* of
//! network segment: the LAN, a site's tail circuit (in either direction),
//! and the WAN backbone. [`NetStats`] records carried and dropped
//! traversals per segment class and per packet kind (`"data"`,
//! `"heartbeat"`, `"nack"`, ...), plus per-site tail-circuit detail for
//! the Figure-7 NACK-reduction experiment.

use std::collections::HashMap;

use lbrm_wire::SiteId;

/// The four classes of network segment in the Figure-1 topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentClass {
    /// A site's local network.
    Lan,
    /// A site's tail circuit, outbound (site → backbone).
    TailOut,
    /// A site's tail circuit, inbound (backbone → site).
    TailIn,
    /// The wide-area backbone.
    Wan,
}

/// Carried/dropped counters for one key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Traversals that crossed the segment.
    pub carried: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Traversals dropped by the segment's loss model.
    pub dropped: u64,
}

/// Aggregated network statistics for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    by_class: HashMap<(SegmentClass, &'static str), Counter>,
    by_site_tail: HashMap<(SiteId, SegmentClass, &'static str), Counter>,
}

impl NetStats {
    /// Records a traversal of `class` by a packet of `kind`.
    pub fn record(
        &mut self,
        class: SegmentClass,
        site: Option<SiteId>,
        kind: &'static str,
        bytes: usize,
        dropped: bool,
    ) {
        let c = self.by_class.entry((class, kind)).or_default();
        if dropped {
            c.dropped += 1;
        } else {
            c.carried += 1;
            c.bytes += bytes as u64;
        }
        if let Some(site) = site {
            let c = self.by_site_tail.entry((site, class, kind)).or_default();
            if dropped {
                c.dropped += 1;
            } else {
                c.carried += 1;
                c.bytes += bytes as u64;
            }
        }
    }

    /// Counter for a segment class and packet kind.
    pub fn class_kind(&self, class: SegmentClass, kind: &str) -> Counter {
        self.by_class
            .iter()
            .filter(|((c, k), _)| *c == class && *k == kind)
            .map(|(_, v)| *v)
            .fold(Counter::default(), add)
    }

    /// Total counter for a segment class across all packet kinds.
    pub fn class_total(&self, class: SegmentClass) -> Counter {
        self.by_class
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, v)| *v)
            .fold(Counter::default(), add)
    }

    /// Counter for one site's tail circuit in one direction and kind.
    pub fn site_tail(&self, site: SiteId, class: SegmentClass, kind: &str) -> Counter {
        self.by_site_tail
            .iter()
            .filter(|((s, c, k), _)| *s == site && *c == class && *k == kind)
            .map(|(_, v)| *v)
            .fold(Counter::default(), add)
    }

    /// Folds another accounting into this one (counter-wise sums over
    /// the key union). Merging is commutative and associative, so the
    /// sharded world can accumulate per-shard `NetStats` independently
    /// and merge them in any order with one deterministic result.
    pub fn merge(&mut self, other: &NetStats) {
        for (k, v) in &other.by_class {
            let c = self.by_class.entry(*k).or_default();
            *c = add(*c, *v);
        }
        for (k, v) in &other.by_site_tail {
            let c = self.by_site_tail.entry(*k).or_default();
            *c = add(*c, *v);
        }
    }

    /// All packet kinds seen on a class, with counters (sorted by kind for
    /// deterministic reporting).
    pub fn kinds_on(&self, class: SegmentClass) -> Vec<(&'static str, Counter)> {
        let mut v: Vec<_> = self
            .by_class
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|((_, k), ctr)| (*k, *ctr))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

fn add(a: Counter, b: Counter) -> Counter {
    Counter {
        carried: a.carried + b.carried,
        bytes: a.bytes + b.bytes,
        dropped: a.dropped + b.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = NetStats::default();
        s.record(SegmentClass::Wan, None, "nack", 40, false);
        s.record(SegmentClass::Wan, None, "nack", 40, false);
        s.record(SegmentClass::Wan, None, "nack", 40, true);
        s.record(SegmentClass::Wan, None, "data", 100, false);
        s.record(SegmentClass::TailIn, Some(SiteId(3)), "data", 100, true);

        let n = s.class_kind(SegmentClass::Wan, "nack");
        assert_eq!(n.carried, 2);
        assert_eq!(n.dropped, 1);
        assert_eq!(n.bytes, 80);

        let t = s.class_total(SegmentClass::Wan);
        assert_eq!(t.carried, 3);

        let tail = s.site_tail(SiteId(3), SegmentClass::TailIn, "data");
        assert_eq!(tail.dropped, 1);
        assert_eq!(tail.carried, 0);

        assert_eq!(
            s.site_tail(SiteId(9), SegmentClass::TailIn, "data"),
            Counter::default()
        );
    }

    #[test]
    fn merge_sums_counters_and_is_order_free() {
        let mut a = NetStats::default();
        a.record(SegmentClass::Wan, None, "data", 100, false);
        a.record(SegmentClass::TailIn, Some(SiteId(1)), "data", 100, true);
        let mut b = NetStats::default();
        b.record(SegmentClass::Wan, None, "data", 50, false);
        b.record(SegmentClass::Wan, None, "nack", 40, true);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let w = ab.class_kind(SegmentClass::Wan, "data");
        assert_eq!((w.carried, w.bytes), (2, 150));
        assert_eq!(ab.class_kind(SegmentClass::Wan, "nack").dropped, 1);
        assert_eq!(
            ab.site_tail(SiteId(1), SegmentClass::TailIn, "data")
                .dropped,
            1
        );
    }

    #[test]
    fn kinds_listing_sorted() {
        let mut s = NetStats::default();
        s.record(SegmentClass::Lan, Some(SiteId(0)), "nack", 1, false);
        s.record(SegmentClass::Lan, Some(SiteId(0)), "data", 1, false);
        let kinds = s.kinds_on(SegmentClass::Lan);
        assert_eq!(
            kinds.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec!["data", "nack"]
        );
    }
}
