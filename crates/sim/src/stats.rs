//! Traffic accounting.
//!
//! The paper's evaluation counts packets crossing particular *classes* of
//! network segment: the LAN, a site's tail circuit (in either direction),
//! and the WAN backbone. [`NetStats`] records carried and dropped
//! traversals per segment class and per packet kind (`"data"`,
//! `"heartbeat"`, `"nack"`, ...), plus per-site tail-circuit detail for
//! the Figure-7 NACK-reduction experiment.
//!
//! [`BundleStats`] is the datagram-level companion: it models DIS-style
//! PDU bundling (`lbrm_wire::bundle`) arithmetically, so experiments can
//! report datagrams-saved deterministically without serializing a byte.
//! Bundle accounting is deliberately separate from [`NetStats`]: the
//! protocol-visible traffic model is identical across `LBRM_BUNDLE`
//! legs (pinned by a differential test), and only this ledger differs.

use std::collections::{BTreeMap, HashMap};

use lbrm_wire::bundle::{
    BundleMode, BUNDLE_HEADER_LEN, DEFAULT_BUNDLE_MTU, ENTRY_PREFIX_LEN, MAX_BUNDLE_PACKETS,
};
use lbrm_wire::SiteId;

use crate::time::SimTime;

/// The four classes of network segment in the Figure-1 topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentClass {
    /// A site's local network.
    Lan,
    /// A site's tail circuit, outbound (site → backbone).
    TailOut,
    /// A site's tail circuit, inbound (backbone → site).
    TailIn,
    /// The wide-area backbone.
    Wan,
}

/// Carried/dropped counters for one key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Traversals that crossed the segment.
    pub carried: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Traversals dropped by the segment's loss model.
    pub dropped: u64,
}

/// Aggregated network statistics for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    by_class: HashMap<(SegmentClass, &'static str), Counter>,
    by_site_tail: HashMap<(SiteId, SegmentClass, &'static str), Counter>,
}

impl NetStats {
    /// Records a traversal of `class` by a packet of `kind`.
    pub fn record(
        &mut self,
        class: SegmentClass,
        site: Option<SiteId>,
        kind: &'static str,
        bytes: usize,
        dropped: bool,
    ) {
        let c = self.by_class.entry((class, kind)).or_default();
        if dropped {
            c.dropped += 1;
        } else {
            c.carried += 1;
            c.bytes += bytes as u64;
        }
        if let Some(site) = site {
            let c = self.by_site_tail.entry((site, class, kind)).or_default();
            if dropped {
                c.dropped += 1;
            } else {
                c.carried += 1;
                c.bytes += bytes as u64;
            }
        }
    }

    /// Counter for a segment class and packet kind.
    pub fn class_kind(&self, class: SegmentClass, kind: &str) -> Counter {
        self.by_class
            .iter()
            .filter(|((c, k), _)| *c == class && *k == kind)
            .map(|(_, v)| *v)
            .fold(Counter::default(), add)
    }

    /// Total counter for a segment class across all packet kinds.
    pub fn class_total(&self, class: SegmentClass) -> Counter {
        self.by_class
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, v)| *v)
            .fold(Counter::default(), add)
    }

    /// Counter for one site's tail circuit in one direction and kind.
    pub fn site_tail(&self, site: SiteId, class: SegmentClass, kind: &str) -> Counter {
        self.by_site_tail
            .iter()
            .filter(|((s, c, k), _)| *s == site && *c == class && *k == kind)
            .map(|(_, v)| *v)
            .fold(Counter::default(), add)
    }

    /// Folds another accounting into this one (counter-wise sums over
    /// the key union). Merging is commutative and associative, so the
    /// sharded world can accumulate per-shard `NetStats` independently
    /// and merge them in any order with one deterministic result.
    pub fn merge(&mut self, other: &NetStats) {
        for (k, v) in &other.by_class {
            let c = self.by_class.entry(*k).or_default();
            *c = add(*c, *v);
        }
        for (k, v) in &other.by_site_tail {
            let c = self.by_site_tail.entry(*k).or_default();
            *c = add(*c, *v);
        }
    }

    /// All packet kinds seen on a class, with counters (sorted by kind for
    /// deterministic reporting).
    pub fn kinds_on(&self, class: SegmentClass) -> Vec<(&'static str, Counter)> {
        let mut v: Vec<_> = self
            .by_class
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|((_, k), ctr)| (*k, *ctr))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

fn add(a: Counter, b: Counter) -> Counter {
    Counter {
        carried: a.carried + b.carried,
        bytes: a.bytes + b.bytes,
        dropped: a.dropped + b.dropped,
    }
}

/// Per-packet-kind bundle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindBundle {
    /// Protocol packets of this kind sent.
    pub packets: u64,
    /// Datagram frames *opened* by a packet of this kind. A mixed-kind
    /// frame is charged to the kind that opened it, so per-kind frames
    /// sum exactly to [`BundleStats::frames`].
    pub frames: u64,
}

/// Datagram-level accounting under the simulator's bundle-framing model.
///
/// Both ledgers are always maintained — `packets`/`bytes_unbundled`
/// count one datagram per packet, `frames`/`bytes_bundled` count
/// MTU-bounded coalesced frames — and [`mode`](Self::mode) selects
/// which one [`datagrams`](Self::datagrams) and
/// [`wire_bytes`](Self::wire_bytes) report. One run therefore yields
/// both legs' datagram counts, while differential tests can still pin
/// that the mode changes *nothing else*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BundleStats {
    /// The mode the reporting accessors answer for (the world's
    /// `LBRM_BUNDLE` setting at collection time).
    pub mode: BundleMode,
    /// Protocol packets sent (= datagrams with bundling off).
    pub packets: u64,
    /// Datagrams with bundling on: consecutive same-instant sends to
    /// one destination share MTU-bounded frames.
    pub frames: u64,
    /// Wire bytes with one datagram per packet.
    pub bytes_unbundled: u64,
    /// Wire bytes under bundle framing (single-packet frames carry no
    /// framing overhead — they go out as bare packets).
    pub bytes_bundled: u64,
    /// Per-kind breakdown (deterministically ordered).
    pub per_kind: BTreeMap<&'static str, KindBundle>,
}

impl BundleStats {
    /// Datagrams sent under the recorded [`mode`](Self::mode).
    pub fn datagrams(&self) -> u64 {
        if self.mode.is_on() {
            self.frames
        } else {
            self.packets
        }
    }

    /// Wire bytes sent under the recorded [`mode`](Self::mode).
    pub fn wire_bytes(&self) -> u64 {
        if self.mode.is_on() {
            self.bytes_bundled
        } else {
            self.bytes_unbundled
        }
    }

    /// Per-kind counters (zero for kinds never sent).
    pub fn kind(&self, kind: &str) -> KindBundle {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Folds another accounting into this one (`mode` is left alone —
    /// it is a reporting selector, not a counter). Commutative and
    /// associative like [`NetStats::merge`].
    pub fn merge(&mut self, other: &BundleStats) {
        self.packets += other.packets;
        self.frames += other.frames;
        self.bytes_unbundled += other.bytes_unbundled;
        self.bytes_bundled += other.bytes_bundled;
        for (k, v) in &other.per_kind {
            let c = self.per_kind.entry(k).or_default();
            c.packets += v.packets;
            c.frames += v.frames;
        }
    }
}

/// Where a metered send was headed. Unicast sends key on the target
/// host; multicast sends key on (group, TTL) — one IP-multicast datagram
/// regardless of receiver count.
pub(crate) type DestKey = (u8, u64, u64);

/// One host's deterministic bundle-framing fold.
///
/// Mirrors `lbrm_wire::BundleBuilder`'s flush rule arithmetically: a
/// send joins the open frame iff it happens at the same virtual instant,
/// to the same destination, the frame holds fewer than
/// [`MAX_BUNDLE_PACKETS`], and the entry still fits the MTU. Because a
/// host's sends are processed in a placement-invariant order, the fold —
/// and thus every reported count — is identical for any shard count.
#[derive(Debug, Default)]
pub(crate) struct BundleMeter {
    stats: BundleStats,
    open: Option<OpenFrame>,
}

#[derive(Debug)]
struct OpenFrame {
    at: SimTime,
    dest: DestKey,
    count: usize,
    /// Modeled frame size: header + Σ(prefix + packet).
    frame_bytes: usize,
}

impl BundleMeter {
    /// Accounts one packet send of `len` encoded bytes.
    pub fn record(&mut self, at: SimTime, dest: DestKey, kind: &'static str, len: usize) {
        self.stats.packets += 1;
        self.stats.bytes_unbundled += len as u64;
        self.stats.per_kind.entry(kind).or_default().packets += 1;
        if let Some(open) = &mut self.open {
            if open.at == at
                && open.dest == dest
                && open.count < MAX_BUNDLE_PACKETS
                && open.frame_bytes + ENTRY_PREFIX_LEN + len <= DEFAULT_BUNDLE_MTU
            {
                if open.count == 1 {
                    // The frame just became a real bundle: charge the
                    // header and the first entry's prefix retroactively
                    // (a frame that stays single goes out bare).
                    self.stats.bytes_bundled += (BUNDLE_HEADER_LEN + ENTRY_PREFIX_LEN) as u64;
                }
                self.stats.bytes_bundled += (ENTRY_PREFIX_LEN + len) as u64;
                open.count += 1;
                open.frame_bytes += ENTRY_PREFIX_LEN + len;
                return;
            }
        }
        self.open = Some(OpenFrame {
            at,
            dest,
            count: 1,
            frame_bytes: BUNDLE_HEADER_LEN + ENTRY_PREFIX_LEN + len,
        });
        self.stats.frames += 1;
        self.stats.bytes_bundled += len as u64;
        self.stats.per_kind.entry(kind).or_default().frames += 1;
    }

    /// The accumulated accounting (`mode` is the default — the world
    /// stamps its own mode when merging).
    pub fn stats(&self) -> &BundleStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = NetStats::default();
        s.record(SegmentClass::Wan, None, "nack", 40, false);
        s.record(SegmentClass::Wan, None, "nack", 40, false);
        s.record(SegmentClass::Wan, None, "nack", 40, true);
        s.record(SegmentClass::Wan, None, "data", 100, false);
        s.record(SegmentClass::TailIn, Some(SiteId(3)), "data", 100, true);

        let n = s.class_kind(SegmentClass::Wan, "nack");
        assert_eq!(n.carried, 2);
        assert_eq!(n.dropped, 1);
        assert_eq!(n.bytes, 80);

        let t = s.class_total(SegmentClass::Wan);
        assert_eq!(t.carried, 3);

        let tail = s.site_tail(SiteId(3), SegmentClass::TailIn, "data");
        assert_eq!(tail.dropped, 1);
        assert_eq!(tail.carried, 0);

        assert_eq!(
            s.site_tail(SiteId(9), SegmentClass::TailIn, "data"),
            Counter::default()
        );
    }

    #[test]
    fn merge_sums_counters_and_is_order_free() {
        let mut a = NetStats::default();
        a.record(SegmentClass::Wan, None, "data", 100, false);
        a.record(SegmentClass::TailIn, Some(SiteId(1)), "data", 100, true);
        let mut b = NetStats::default();
        b.record(SegmentClass::Wan, None, "data", 50, false);
        b.record(SegmentClass::Wan, None, "nack", 40, true);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let w = ab.class_kind(SegmentClass::Wan, "data");
        assert_eq!((w.carried, w.bytes), (2, 150));
        assert_eq!(ab.class_kind(SegmentClass::Wan, "nack").dropped, 1);
        assert_eq!(
            ab.site_tail(SiteId(1), SegmentClass::TailIn, "data")
                .dropped,
            1
        );
    }

    #[test]
    fn bundle_meter_coalesces_same_instant_same_dest() {
        let mut m = BundleMeter::default();
        let t0 = SimTime::ZERO;
        let dest = (0u8, 7u64, 0u64);
        m.record(t0, dest, "retrans", 100);
        m.record(t0, dest, "retrans", 100);
        m.record(t0, dest, "retrans", 100);
        let s = m.stats();
        assert_eq!(s.packets, 3);
        assert_eq!(s.frames, 1, "same instant + dest must share a frame");
        assert_eq!(s.bytes_unbundled, 300);
        // 8-byte header + three (2-byte prefix + 100-byte packet) entries.
        assert_eq!(s.bytes_bundled, 8 + 3 * 102);
        assert_eq!(s.kind("retrans").frames, 1);
        assert_eq!(s.kind("retrans").packets, 3);

        // A later instant opens a new frame even to the same dest.
        let t1 = t0 + std::time::Duration::from_millis(1);
        m.record(t1, dest, "retrans", 100);
        assert_eq!(m.stats().frames, 2);
        // A different dest at that instant opens another.
        m.record(t1, (0, 8, 0), "retrans", 100);
        assert_eq!(m.stats().frames, 3);
    }

    #[test]
    fn single_packet_frames_are_billed_bare() {
        let mut m = BundleMeter::default();
        m.record(SimTime::ZERO, (0, 1, 0), "data", 64);
        assert_eq!(m.stats().bytes_bundled, 64, "no framing for a lone packet");
        assert_eq!(m.stats().bytes_unbundled, 64);
    }

    #[test]
    fn bundle_meter_respects_mtu_and_count_cap() {
        // Two 700-byte packets: 8 + 702 + 702 > 1400, so the second
        // opens a new frame.
        let mut m = BundleMeter::default();
        let dest = (1u8, 1u64, 15u64);
        m.record(SimTime::ZERO, dest, "data", 700);
        m.record(SimTime::ZERO, dest, "data", 700);
        assert_eq!(m.stats().frames, 2);

        // 300 one-byte packets fit the MTU but overflow the u8 count.
        let mut m = BundleMeter::default();
        for _ in 0..300 {
            m.record(SimTime::ZERO, dest, "nack", 1);
        }
        assert_eq!(m.stats().packets, 300);
        assert_eq!(m.stats().frames, 2, "count cap at 255 splits the frame");
    }

    #[test]
    fn bundle_stats_mode_selects_ledger_and_merge_is_order_free() {
        let mut m = BundleMeter::default();
        let dest = (0u8, 2u64, 0u64);
        for _ in 0..10 {
            m.record(SimTime::ZERO, dest, "retrans", 50);
        }
        let mut off = m.stats().clone();
        off.mode = BundleMode::Off;
        assert_eq!(off.datagrams(), 10);
        assert_eq!(off.wire_bytes(), 500);
        let mut on = off.clone();
        on.mode = BundleMode::On;
        assert_eq!(on.datagrams(), 1);
        assert_eq!(on.wire_bytes(), 8 + 10 * 52);

        let mut a = BundleStats::default();
        a.merge(&off);
        a.merge(&on);
        let mut b = BundleStats::default();
        b.merge(&on);
        b.merge(&off);
        assert_eq!(a, b, "merge must be commutative");
        assert_eq!(a.packets, 20);
        assert_eq!(a.kind("retrans").packets, 20);
    }

    #[test]
    fn kinds_listing_sorted() {
        let mut s = NetStats::default();
        s.record(SegmentClass::Lan, Some(SiteId(0)), "nack", 1, false);
        s.record(SegmentClass::Lan, Some(SiteId(0)), "data", 1, false);
        let kinds = s.kinds_on(SegmentClass::Lan);
        assert_eq!(
            kinds.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec!["data", "nack"]
        );
    }
}
