//! Factory automation (§4.4).
//!
//! Three LBRM properties the paper calls out map directly onto this
//! module:
//!
//! * **Audit logging for free** — "factory automation typically requires
//!   that all transactions and tasks are logged for accurate
//!   record-keeping. LBRM already provides this logging as part of the
//!   lost packet recovery mechanism": [`audit_log`] reads the complete
//!   reading history straight out of a logging server.
//! * **Simple sensors** — a [`Sensor`] is just payload encoding over a
//!   `Sender`; buffering and retransmission burden sit with the loggers.
//! * **Mobile monitors** — a [`MonitorStation`] fed by a receiver with
//!   `RecoverAll` reliability recovers everything it missed while
//!   disconnected, without disturbing the flow to anyone else.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lbrm_core::logger::Logger;
use lbrm_core::machine::{Actions, Delivery};
use lbrm_core::sender::Sender;
use lbrm_core::time::Time;
use lbrm_wire::Seq;

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reading {
    /// Which sensor.
    pub sensor_id: u32,
    /// Measured value, fixed-point ×1000.
    pub value_milli: i64,
    /// Sensor-local timestamp (ms since its epoch).
    pub at_ms: u64,
}

/// Encodes a reading payload.
pub fn encode_reading(r: &Reading) -> Bytes {
    let mut b = BytesMut::with_capacity(20);
    b.put_u32(r.sensor_id);
    b.put_i64(r.value_milli);
    b.put_u64(r.at_ms);
    b.freeze()
}

/// Decodes a reading payload.
pub fn decode_reading(mut payload: &[u8]) -> Option<Reading> {
    if payload.remaining() < 20 {
        return None;
    }
    Some(Reading {
        sensor_id: payload.get_u32(),
        value_milli: payload.get_i64(),
        at_ms: payload.get_u64(),
    })
}

/// A data sensor: minimal state, publishes readings through a sender.
#[derive(Debug)]
pub struct Sensor {
    /// This sensor's id.
    pub id: u32,
}

impl Sensor {
    /// Creates a sensor.
    pub fn new(id: u32) -> Self {
        Sensor { id }
    }

    /// Publishes one measurement.
    pub fn report(&self, sender: &mut Sender, now: Time, value_milli: i64, out: &mut Actions) {
        let reading = Reading {
            sensor_id: self.id,
            value_milli,
            at_ms: now.nanos() / 1_000_000,
        };
        sender.send(now, encode_reading(&reading), out);
    }
}

/// A monitoring station: latest value per sensor plus a full local
/// history keyed by stream sequence (gap-free once recovery completes).
#[derive(Debug, Default)]
pub struct MonitorStation {
    latest: BTreeMap<u32, Reading>,
    history: BTreeMap<u32, (Seq, Reading)>,
    /// Readings that arrived via recovery (e.g. after reconnecting).
    pub recovered_readings: u64,
}

impl MonitorStation {
    /// Creates an empty station.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latest reading from `sensor`.
    pub fn latest(&self, sensor: u32) -> Option<&Reading> {
        self.latest.get(&sensor)
    }

    /// Number of history entries held.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// `true` if the local history has no sequence gaps.
    pub fn history_complete(&self) -> bool {
        let mut prev: Option<u32> = None;
        for (seq, _) in self.history.values() {
            if let Some(p) = prev {
                if seq.raw() != p + 1 {
                    return false;
                }
            }
            prev = Some(seq.raw());
        }
        true
    }

    /// Applies one delivery.
    pub fn on_delivery(&mut self, d: &Delivery) {
        let Some(r) = decode_reading(&d.payload) else {
            return;
        };
        if d.recovered {
            self.recovered_readings += 1;
        }
        self.history.insert(d.seq.raw(), (d.seq, r));
        match self.latest.get(&r.sensor_id) {
            Some(held) if held.at_ms > r.at_ms => {}
            _ => {
                self.latest.insert(r.sensor_id, r);
            }
        }
    }
}

/// Reads the complete reading history out of a logging server — the
/// paper's "record-keeping" for free. Undecodable payloads (foreign
/// traffic) are skipped.
pub fn audit_log(logger: &Logger) -> Vec<(Seq, Reading)> {
    logger
        .store()
        .iter()
        .filter_map(|(seq, payload)| decode_reading(payload).map(|r| (seq, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_core::logger::LoggerConfig;
    use lbrm_core::machine::{Action, Machine};
    use lbrm_core::sender::SenderConfig;
    use lbrm_wire::{EpochId, GroupId, HostId, Packet, SourceId};

    const GROUP: GroupId = GroupId(4);
    const SRC: SourceId = SourceId(7);

    fn sender() -> Sender {
        Sender::new(SenderConfig::new(GROUP, SRC, HostId(1), HostId(2)))
    }

    fn extract(out: &Actions, recovered: bool) -> Vec<Delivery> {
        out.iter()
            .filter_map(|a| match a {
                Action::Multicast {
                    packet: Packet::Data { payload, seq, .. },
                    ..
                } => Some(Delivery {
                    seq: *seq,
                    payload: payload.clone(),
                    recovered,
                }),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        let r = Reading {
            sensor_id: 7,
            value_milli: -12_345,
            at_ms: 99,
        };
        assert_eq!(decode_reading(&encode_reading(&r)), Some(r));
        assert_eq!(decode_reading(b"short"), None);
    }

    #[test]
    fn station_tracks_latest_and_history() {
        let mut s = sender();
        let mut station = MonitorStation::new();
        let sensor = Sensor::new(7);
        let mut out = Actions::new();
        sensor.report(&mut s, Time::from_secs(1), 100, &mut out);
        sensor.report(&mut s, Time::from_secs(2), 250, &mut out);
        for d in extract(&out, false) {
            station.on_delivery(&d);
        }
        assert_eq!(station.latest(7).unwrap().value_milli, 250);
        assert_eq!(station.history_len(), 2);
        assert!(station.history_complete());
    }

    #[test]
    fn reconnecting_monitor_backfills_history() {
        let mut s = sender();
        let sensor = Sensor::new(1);
        let mut out1 = Actions::new();
        sensor.report(&mut s, Time::from_secs(1), 10, &mut out1);
        let mut out2 = Actions::new();
        sensor.report(&mut s, Time::from_secs(2), 20, &mut out2);
        let mut out3 = Actions::new();
        sensor.report(&mut s, Time::from_secs(3), 30, &mut out3);

        let mut station = MonitorStation::new();
        // Connected for #1, disconnected for #2, reconnects at #3, then
        // recovers #2 from a logger.
        for d in extract(&out1, false) {
            station.on_delivery(&d);
        }
        for d in extract(&out3, false) {
            station.on_delivery(&d);
        }
        assert!(!station.history_complete());
        for d in extract(&out2, true) {
            station.on_delivery(&d);
        }
        assert!(station.history_complete());
        assert_eq!(station.recovered_readings, 1);
        // Latest reflects newest timestamp even though #2 arrived last.
        assert_eq!(station.latest(1).unwrap().value_milli, 30);
    }

    #[test]
    fn audit_log_reads_logger_store() {
        let mut s = sender();
        let sensor = Sensor::new(3);
        let mut out = Actions::new();
        sensor.report(&mut s, Time::from_secs(1), 1, &mut out);
        sensor.report(&mut s, Time::from_secs(2), 2, &mut out);
        // Feed the multicast stream into a logging server.
        let mut logger = Logger::new(LoggerConfig::primary(GROUP, SRC, HostId(2), HostId(1)));
        let mut log_out = Actions::new();
        for a in &out {
            if let Action::Multicast { packet, .. } = a {
                logger.on_packet(Time::from_secs(2), HostId(1), packet.clone(), &mut log_out);
            }
        }
        let audit = audit_log(&logger);
        assert_eq!(audit.len(), 2);
        assert_eq!(audit[0].1.value_milli, 1);
        assert_eq!(audit[1].1.value_milli, 2);
        assert_eq!(audit[0].0, Seq(1));
    }

    #[test]
    fn foreign_payloads_skipped_in_audit() {
        let mut logger = Logger::new(LoggerConfig::primary(GROUP, SRC, HostId(2), HostId(1)));
        let mut out = Actions::new();
        let pkt = Packet::Data {
            group: GROUP,
            source: SRC,
            seq: Seq(1),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"not a reading"),
        };
        logger.on_packet(Time::ZERO, HostId(1), pkt, &mut out);
        assert!(audit_log(&logger).is_empty());
    }
}
