//! Fault-tolerant distributed file caching without leases (§4.2).
//!
//! Instead of per-file leases, each client subscribes to one LBRM
//! channel per file server and reliably receives invalidation
//! notifications. Failure semantics mirror a lease timeout: when the
//! client detects loss of its connection to the server — the absence of
//! heartbeats, surfaced as
//! [`Notice::FreshnessLost`](lbrm_core::machine::Notice::FreshnessLost)
//! — it invalidates its whole cache; heartbeat resumption re-enables
//! caching.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lbrm_core::machine::{Actions, Delivery, Notice};
use lbrm_core::sender::Sender;
use lbrm_core::time::Time;

/// A file-server invalidation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInvalidation {
    /// The invalidated path.
    pub path: String,
    /// The server's new version of the file.
    pub version: u64,
}

/// Encodes a [`FileInvalidation`] payload.
pub fn encode_invalidation(inv: &FileInvalidation) -> Bytes {
    let mut b = BytesMut::with_capacity(2 + inv.path.len() + 8);
    b.put_u16(inv.path.len() as u16);
    b.put_slice(inv.path.as_bytes());
    b.put_u64(inv.version);
    b.freeze()
}

/// Decodes a [`FileInvalidation`] payload.
pub fn decode_invalidation(mut payload: &[u8]) -> Option<FileInvalidation> {
    if payload.remaining() < 2 {
        return None;
    }
    let len = payload.get_u16() as usize;
    if payload.remaining() < len + 8 {
        return None;
    }
    let path = String::from_utf8(payload[..len].to_vec()).ok()?;
    payload.advance(len);
    let version = payload.get_u64();
    Some(FileInvalidation { path, version })
}

/// Server side: version table plus invalidation publishing.
#[derive(Debug, Default)]
pub struct FileServer {
    versions: HashMap<String, u64>,
}

impl FileServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// A client read: returns the current (version, implicit content
    /// handle) for the path.
    pub fn read(&self, path: &str) -> u64 {
        self.versions.get(path).copied().unwrap_or(0)
    }

    /// A write: bumps the version and multicasts the invalidation.
    pub fn write(&mut self, sender: &mut Sender, now: Time, path: &str, out: &mut Actions) -> u64 {
        let v = self.versions.entry(path.to_owned()).or_insert(0);
        *v += 1;
        let version = *v;
        sender.send(
            now,
            encode_invalidation(&FileInvalidation {
                path: path.to_owned(),
                version,
            }),
            out,
        );
        version
    }
}

/// One cached file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedFile {
    /// Version held.
    pub version: u64,
}

/// Client side: the cache, driven by receiver deliveries and notices.
#[derive(Debug, Default)]
pub struct CachingClient {
    cache: HashMap<String, CachedFile>,
    /// Caching disabled because the server channel went quiet (the
    /// lease-timeout analogue).
    degraded: bool,
    /// Cache-wide invalidations due to channel loss.
    pub full_invalidations: u64,
    /// Per-file invalidations applied.
    pub file_invalidations: u64,
}

impl CachingClient {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while the channel is degraded and reads must go to the
    /// server.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Caches `path` at `version` after a server read.
    pub fn fill(&mut self, path: &str, version: u64) {
        if !self.degraded {
            self.cache.insert(path.to_owned(), CachedFile { version });
        }
    }

    /// A cache lookup; `None` means a server round trip is required.
    pub fn lookup(&self, path: &str) -> Option<CachedFile> {
        if self.degraded {
            None
        } else {
            self.cache.get(path).copied()
        }
    }

    /// Applies a delivery from the invalidation channel.
    pub fn on_delivery(&mut self, d: &Delivery) {
        if let Some(inv) = decode_invalidation(&d.payload) {
            self.file_invalidations += 1;
            self.cache.remove(&inv.path);
        }
    }

    /// Applies a receiver notice; [`Notice::FreshnessLost`] clears the
    /// whole cache, like a lease expiring.
    pub fn on_notice(&mut self, n: &Notice) {
        match n {
            Notice::FreshnessLost => {
                self.degraded = true;
                self.full_invalidations += 1;
                self.cache.clear();
            }
            Notice::FreshnessRestored => {
                self.degraded = false;
            }
            _ => {}
        }
    }

    /// Number of files currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_core::machine::Action;
    use lbrm_core::sender::SenderConfig;
    use lbrm_wire::{GroupId, HostId, Packet, Seq, SourceId};

    fn sender() -> Sender {
        Sender::new(SenderConfig::new(
            GroupId(2),
            SourceId(9),
            HostId(1),
            HostId(2),
        ))
    }

    fn as_delivery(out: &Actions) -> Delivery {
        out.iter()
            .find_map(|a| match a {
                Action::Multicast {
                    packet: Packet::Data { payload, seq, .. },
                    ..
                } => Some(Delivery {
                    seq: *seq,
                    payload: payload.clone(),
                    recovered: false,
                }),
                _ => None,
            })
            .expect("multicast data")
    }

    #[test]
    fn codec_roundtrip() {
        let inv = FileInvalidation {
            path: "/etc/passwd".into(),
            version: 42,
        };
        assert_eq!(decode_invalidation(&encode_invalidation(&inv)), Some(inv));
        assert_eq!(decode_invalidation(b""), None);
        assert_eq!(decode_invalidation(&[0, 20, b'x']), None);
    }

    #[test]
    fn write_invalidates_readers() {
        let mut server = FileServer::new();
        let mut s = sender();
        let mut client = CachingClient::new();
        client.fill("/data/a", server.read("/data/a"));
        assert!(client.lookup("/data/a").is_some());

        let mut out = Actions::new();
        let v = server.write(&mut s, Time::ZERO, "/data/a", &mut out);
        assert_eq!(v, 1);
        client.on_delivery(&as_delivery(&out));
        assert!(
            client.lookup("/data/a").is_none(),
            "cache entry must be gone"
        );
        assert_eq!(client.file_invalidations, 1);
        // Unrelated entries survive.
        client.fill("/data/b", 0);
        let mut out = Actions::new();
        server.write(&mut s, Time::from_secs(1), "/data/a", &mut out);
        client.on_delivery(&as_delivery(&out));
        assert!(client.lookup("/data/b").is_some());
    }

    #[test]
    fn channel_loss_acts_like_lease_timeout() {
        let mut client = CachingClient::new();
        client.fill("/a", 1);
        client.fill("/b", 1);
        assert_eq!(client.len(), 2);
        client.on_notice(&Notice::FreshnessLost);
        assert!(client.is_degraded());
        assert!(client.is_empty());
        assert_eq!(client.full_invalidations, 1);
        // While degraded, no caching and no hits.
        client.fill("/a", 2);
        assert_eq!(client.lookup("/a"), None);
        // Heartbeats resume: caching allowed again.
        client.on_notice(&Notice::FreshnessRestored);
        client.fill("/a", 2);
        assert_eq!(client.lookup("/a"), Some(CachedFile { version: 2 }));
    }

    #[test]
    fn seq_numbering_advances_per_write() {
        let mut server = FileServer::new();
        let mut s = sender();
        let mut out = Actions::new();
        server.write(&mut s, Time::ZERO, "/x", &mut out);
        server.write(&mut s, Time::ZERO, "/y", &mut out);
        let seqs: Vec<Seq> = out
            .iter()
            .filter_map(|a| match a {
                Action::Multicast {
                    packet: Packet::Data { seq, .. },
                    ..
                } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![Seq(1), Seq(2)]);
    }
}
