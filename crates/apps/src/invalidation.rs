//! WWW page invalidation (§4.3, Appendix A).
//!
//! Every HTML document carries a `<!MULTICAST.a.b.c.d.>` tag on its
//! first line associating it with an invalidation group. The HTTP server
//! reliably multicasts an `UPDATE` message whenever a local document
//! changes; each browser holding the page in its cache marks it invalid
//! and highlights the RELOAD button. The "simple extension" of §4.3 —
//! automatic dissemination of the updated document — piggybacks the new
//! body after the message line.
//!
//! Message payloads are the *verbatim Appendix-A text protocol*
//! (`TRANS:17.0:UPDATE:<url>`), carried inside LBRM data packets; a
//! retransmission served from a log arrives with its `RETRANS` tag via
//! the `recovered` delivery flag.

use std::collections::HashMap;

use bytes::Bytes;

use lbrm_core::machine::{Actions, Delivery, Notice};
use lbrm_core::sender::Sender;
use lbrm_core::time::Time;
use lbrm_wire::text::{parse_message, TextMessage};
use lbrm_wire::Seq;

/// Renders the payload for an update of `url`, optionally carrying the
/// new document body (the §4.3 auto-dissemination extension).
pub fn update_payload(seq: Seq, url: &str, body: Option<&str>) -> Bytes {
    let line = TextMessage::Update {
        seq,
        url: url.to_owned(),
        retrans: false,
    }
    .to_string();
    match body {
        Some(b) => Bytes::from(format!("{line}\n{b}")),
        None => Bytes::from(line),
    }
}

/// A parsed invalidation delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invalidation {
    /// Update sequence number.
    pub seq: Seq,
    /// The invalidated document.
    pub url: String,
    /// New document body, when auto-dissemination is on.
    pub body: Option<String>,
    /// `true` when this arrived via recovery.
    pub recovered: bool,
}

/// Parses a delivery payload produced by [`update_payload`].
///
/// # Errors
///
/// Returns the underlying text-protocol error for malformed payloads.
pub fn parse_invalidation(d: &Delivery) -> Result<Invalidation, lbrm_wire::text::TextError> {
    let text = String::from_utf8_lossy(&d.payload);
    let (line, body) = match text.split_once('\n') {
        Some((l, b)) => (l, Some(b.to_owned())),
        None => (text.as_ref(), None),
    };
    match parse_message(line)? {
        TextMessage::Update { seq, url, .. } => Ok(Invalidation {
            seq,
            url,
            body,
            recovered: d.recovered,
        }),
        TextMessage::Heartbeat { .. } => Err(lbrm_wire::text::TextError::BadOperation),
    }
}

/// Server side: tracks document versions and publishes updates through
/// an LBRM [`Sender`].
pub struct DocServer {
    versions: HashMap<String, u64>,
}

impl DocServer {
    /// Creates a server with no published documents.
    pub fn new() -> Self {
        DocServer {
            versions: HashMap::new(),
        }
    }

    /// Current version of `url` (0 = never updated).
    pub fn version(&self, url: &str) -> u64 {
        self.versions.get(url).copied().unwrap_or(0)
    }

    /// Publishes that `url` changed, optionally disseminating the new
    /// body; returns the update's sequence number.
    pub fn publish_update(
        &mut self,
        sender: &mut Sender,
        now: Time,
        url: &str,
        body: Option<&str>,
        out: &mut Actions,
    ) -> Seq {
        let seq = sender.next_seq();
        *self.versions.entry(url.to_owned()).or_insert(0) += 1;
        sender.send(now, update_payload(seq, url, body), out);
        seq
    }
}

impl Default for DocServer {
    fn default() -> Self {
        Self::new()
    }
}

/// State of one cached page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedPage {
    /// The cached body.
    pub body: String,
    /// Set when an invalidation arrived: the RELOAD button is
    /// highlighted (Appendix A).
    pub reload_highlighted: bool,
}

/// Client side: a browser cache consuming receiver deliveries.
#[derive(Debug, Default)]
pub struct BrowserCache {
    pages: HashMap<String, CachedPage>,
    /// Invalidation messages applied.
    pub invalidations: u64,
    /// Pages auto-refreshed from a piggybacked body.
    pub auto_refreshed: u64,
    /// Set while the invalidation channel's freshness is lost; cached
    /// pages may be stale without the client knowing.
    pub channel_degraded: bool,
}

impl BrowserCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a freshly fetched page.
    pub fn store(&mut self, url: &str, body: &str) {
        self.pages.insert(
            url.to_owned(),
            CachedPage {
                body: body.to_owned(),
                reload_highlighted: false,
            },
        );
    }

    /// Looks up a cached page.
    pub fn get(&self, url: &str) -> Option<&CachedPage> {
        self.pages.get(url)
    }

    /// `true` if the page is cached and not flagged for reload.
    pub fn is_valid(&self, url: &str) -> bool {
        self.pages.get(url).is_some_and(|p| !p.reload_highlighted)
    }

    /// The user clicked RELOAD and refetched the page.
    pub fn reload(&mut self, url: &str, body: &str) {
        self.store(url, body);
    }

    /// Applies one receiver delivery.
    ///
    /// # Errors
    ///
    /// Malformed payloads are reported (and otherwise ignored).
    pub fn on_delivery(&mut self, d: &Delivery) -> Result<(), lbrm_wire::text::TextError> {
        let inv = parse_invalidation(d)?;
        self.invalidations += 1;
        if let Some(page) = self.pages.get_mut(&inv.url) {
            match inv.body {
                Some(body) => {
                    // Auto-dissemination: refresh in place.
                    page.body = body;
                    page.reload_highlighted = false;
                    self.auto_refreshed += 1;
                }
                None => page.reload_highlighted = true,
            }
        }
        Ok(())
    }

    /// Applies a receiver notice (freshness tracking).
    pub fn on_notice(&mut self, n: &Notice) {
        match n {
            Notice::FreshnessLost => self.channel_degraded = true,
            Notice::FreshnessRestored => self.channel_degraded = false,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_core::machine::{sent_packets, Action};
    use lbrm_core::sender::SenderConfig;
    use lbrm_wire::{GroupId, HostId, Packet, SourceId};

    fn sender() -> Sender {
        Sender::new(SenderConfig::new(
            GroupId(1),
            SourceId(1),
            HostId(1),
            HostId(2),
        ))
    }

    fn delivery(payload: Bytes, recovered: bool) -> Delivery {
        Delivery {
            seq: Seq(1),
            payload,
            recovered,
        }
    }

    #[test]
    fn payload_roundtrip_plain() {
        let p = update_payload(
            Seq(17),
            "http://www-DSG.Stanford.EDU/groupMembers.html",
            None,
        );
        let inv = parse_invalidation(&delivery(p, false)).unwrap();
        assert_eq!(inv.seq, Seq(17));
        assert_eq!(inv.url, "http://www-DSG.Stanford.EDU/groupMembers.html");
        assert_eq!(inv.body, None);
    }

    #[test]
    fn payload_roundtrip_with_body() {
        let p = update_payload(Seq(3), "http://a/x.html", Some("<h1>new</h1>"));
        let inv = parse_invalidation(&delivery(p, true)).unwrap();
        assert_eq!(inv.body.as_deref(), Some("<h1>new</h1>"));
        assert!(inv.recovered);
    }

    #[test]
    fn server_publishes_through_sender() {
        let mut server = DocServer::new();
        let mut s = sender();
        let mut out = Actions::new();
        let seq = server.publish_update(&mut s, Time::ZERO, "http://a/x.html", None, &mut out);
        assert_eq!(seq, Seq(1));
        assert_eq!(server.version("http://a/x.html"), 1);
        match sent_packets(&out)[..] {
            [Packet::Data { payload, .. }] => {
                assert!(payload.starts_with(b"TRANS:1.0:UPDATE:"));
            }
            ref other => panic!("{other:?}"),
        }
        // Versions advance per URL independently.
        server.publish_update(&mut s, Time::ZERO, "http://a/x.html", None, &mut out);
        server.publish_update(&mut s, Time::ZERO, "http://a/y.html", None, &mut out);
        assert_eq!(server.version("http://a/x.html"), 2);
        assert_eq!(server.version("http://a/y.html"), 1);
    }

    #[test]
    fn cache_highlights_reload() {
        let mut cache = BrowserCache::new();
        cache.store("http://a/x.html", "<old>");
        assert!(cache.is_valid("http://a/x.html"));
        let p = update_payload(Seq(1), "http://a/x.html", None);
        cache.on_delivery(&delivery(p, false)).unwrap();
        assert!(!cache.is_valid("http://a/x.html"));
        assert!(cache.get("http://a/x.html").unwrap().reload_highlighted);
        // The user reloads.
        cache.reload("http://a/x.html", "<new>");
        assert!(cache.is_valid("http://a/x.html"));
        assert_eq!(cache.get("http://a/x.html").unwrap().body, "<new>");
    }

    #[test]
    fn cache_auto_refreshes_with_body() {
        let mut cache = BrowserCache::new();
        cache.store("http://a/x.html", "<old>");
        let p = update_payload(Seq(1), "http://a/x.html", Some("<new>"));
        cache.on_delivery(&delivery(p, false)).unwrap();
        assert!(cache.is_valid("http://a/x.html"));
        assert_eq!(cache.get("http://a/x.html").unwrap().body, "<new>");
        assert_eq!(cache.auto_refreshed, 1);
    }

    #[test]
    fn uncached_pages_ignore_invalidations() {
        let mut cache = BrowserCache::new();
        let p = update_payload(Seq(1), "http://a/other.html", None);
        cache.on_delivery(&delivery(p, false)).unwrap();
        assert_eq!(cache.invalidations, 1);
        assert!(cache.get("http://a/other.html").is_none());
    }

    #[test]
    fn channel_degradation_tracked() {
        let mut cache = BrowserCache::new();
        cache.on_notice(&Notice::FreshnessLost);
        assert!(cache.channel_degraded);
        cache.on_notice(&Notice::FreshnessRestored);
        assert!(!cache.channel_degraded);
    }

    #[test]
    fn malformed_payload_reported() {
        let mut cache = BrowserCache::new();
        let bad = delivery(Bytes::from_static(b"GARBAGE"), false);
        assert!(cache.on_delivery(&bad).is_err());
        assert_eq!(cache.invalidations, 0);
    }

    #[test]
    fn end_to_end_sender_to_cache() {
        // Server → (extract multicast payload) → cache, the full app path.
        let mut server = DocServer::new();
        let mut s = sender();
        let mut cache = BrowserCache::new();
        cache.store("http://a/x.html", "<v1>");
        let mut out = Actions::new();
        server.publish_update(
            &mut s,
            Time::ZERO,
            "http://a/x.html",
            Some("<v2>"),
            &mut out,
        );
        let payload = out
            .iter()
            .find_map(|a| match a {
                Action::Multicast {
                    packet: Packet::Data { payload, seq, .. },
                    ..
                } => Some(Delivery {
                    seq: *seq,
                    payload: payload.clone(),
                    recovered: false,
                }),
                _ => None,
            })
            .unwrap();
        cache.on_delivery(&payload).unwrap();
        assert_eq!(cache.get("http://a/x.html").unwrap().body, "<v2>");
    }
}
