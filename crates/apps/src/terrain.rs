//! Dynamic terrain for Distributed Interactive Simulation (§1).
//!
//! The paper's motivating example: terrain entities (bridges, trees,
//! buildings) are static for minutes at a time, yet when the bridge is
//! destroyed every tank in visual range must see it within a fraction of
//! a second — the ¼-second MaxIT freshness requirement. One LBRM group
//! carries one terrain entity's state transitions; simulators hold a
//! [`TerrainView`] that applies updates and knows when its view can no
//! longer be trusted.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lbrm_core::machine::{Actions, Delivery, Notice};
use lbrm_core::sender::Sender;
use lbrm_core::time::Time;

/// The state of a terrain entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityState {
    /// Fully functional.
    Intact,
    /// Degraded but usable.
    Damaged,
    /// Unusable — a tank must not try to drive over this bridge.
    Destroyed,
}

impl EntityState {
    fn tag(self) -> u8 {
        match self {
            EntityState::Intact => 0,
            EntityState::Damaged => 1,
            EntityState::Destroyed => 2,
        }
    }

    fn from_tag(t: u8) -> Option<EntityState> {
        match t {
            0 => Some(EntityState::Intact),
            1 => Some(EntityState::Damaged),
            2 => Some(EntityState::Destroyed),
            _ => None,
        }
    }
}

/// One terrain state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerrainUpdate {
    /// Entity identifier (within the exercise database).
    pub entity_id: u64,
    /// New state.
    pub state: EntityState,
}

/// Encodes a terrain update payload.
pub fn encode_update(u: &TerrainUpdate) -> Bytes {
    let mut b = BytesMut::with_capacity(9);
    b.put_u64(u.entity_id);
    b.put_u8(u.state.tag());
    b.freeze()
}

/// Decodes a terrain update payload.
pub fn decode_update(mut payload: &[u8]) -> Option<TerrainUpdate> {
    if payload.remaining() < 9 {
        return None;
    }
    let entity_id = payload.get_u64();
    let state = EntityState::from_tag(payload.get_u8())?;
    Some(TerrainUpdate { entity_id, state })
}

/// Publisher side: a terrain entity (or the exercise's terrain manager)
/// announcing state transitions.
#[derive(Debug)]
pub struct TerrainEntity {
    /// Entity id.
    pub id: u64,
    state: EntityState,
}

impl TerrainEntity {
    /// Creates an intact entity.
    pub fn new(id: u64) -> Self {
        TerrainEntity {
            id,
            state: EntityState::Intact,
        }
    }

    /// Current state.
    pub fn state(&self) -> EntityState {
        self.state
    }

    /// Transitions the entity and multicasts the update.
    pub fn transition(
        &mut self,
        sender: &mut Sender,
        now: Time,
        state: EntityState,
        out: &mut Actions,
    ) {
        self.state = state;
        sender.send(
            now,
            encode_update(&TerrainUpdate {
                entity_id: self.id,
                state,
            }),
            out,
        );
    }
}

/// A simulator's view of terrain state.
#[derive(Debug, Default)]
pub struct TerrainView {
    entities: BTreeMap<u64, EntityState>,
    /// `true` while the channel's freshness guarantee is broken; the
    /// view may be stale and movement decisions should be conservative.
    pub suspect: bool,
    /// Updates applied.
    pub updates: u64,
}

impl TerrainView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity as initially intact (from the exercise
    /// database load).
    pub fn load(&mut self, entity_id: u64) {
        self.entities
            .entry(entity_id)
            .or_insert(EntityState::Intact);
    }

    /// The believed state of an entity.
    pub fn state(&self, entity_id: u64) -> Option<EntityState> {
        self.entities.get(&entity_id).copied()
    }

    /// Would a tank cross this bridge? Only if the view is trustworthy
    /// *and* the bridge is intact — the paper's stale-bridge hazard.
    pub fn passable(&self, entity_id: u64) -> bool {
        !self.suspect && self.state(entity_id) == Some(EntityState::Intact)
    }

    /// Applies a delivery.
    pub fn on_delivery(&mut self, d: &Delivery) {
        if let Some(u) = decode_update(&d.payload) {
            self.updates += 1;
            self.entities.insert(u.entity_id, u.state);
        }
    }

    /// Applies a receiver notice.
    pub fn on_notice(&mut self, n: &Notice) {
        match n {
            Notice::FreshnessLost => self.suspect = true,
            Notice::FreshnessRestored => self.suspect = false,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_core::machine::Action;
    use lbrm_core::sender::SenderConfig;
    use lbrm_wire::{GroupId, HostId, Packet, SourceId};

    fn sender() -> Sender {
        Sender::new(SenderConfig::new(
            GroupId(8),
            SourceId(8),
            HostId(1),
            HostId(2),
        ))
    }

    fn extract(out: &Actions) -> Vec<Delivery> {
        out.iter()
            .filter_map(|a| match a {
                Action::Multicast {
                    packet: Packet::Data { payload, seq, .. },
                    ..
                } => Some(Delivery {
                    seq: *seq,
                    payload: payload.clone(),
                    recovered: false,
                }),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        for state in [
            EntityState::Intact,
            EntityState::Damaged,
            EntityState::Destroyed,
        ] {
            let u = TerrainUpdate {
                entity_id: 42,
                state,
            };
            assert_eq!(decode_update(&encode_update(&u)), Some(u));
        }
        assert_eq!(decode_update(&[0; 8]), None);
        assert_eq!(decode_update(&[0, 0, 0, 0, 0, 0, 0, 42, 9]), None); // bad tag
    }

    #[test]
    fn bridge_destruction_reaches_view() {
        let mut s = sender();
        let mut bridge = TerrainEntity::new(42);
        let mut view = TerrainView::new();
        view.load(42);
        assert!(view.passable(42));

        let mut out = Actions::new();
        bridge.transition(
            &mut s,
            Time::from_secs(60),
            EntityState::Destroyed,
            &mut out,
        );
        for d in extract(&out) {
            view.on_delivery(&d);
        }
        assert_eq!(view.state(42), Some(EntityState::Destroyed));
        assert!(
            !view.passable(42),
            "the tank must not drive onto the bridge"
        );
    }

    #[test]
    fn suspect_view_is_conservative() {
        let mut view = TerrainView::new();
        view.load(1);
        assert!(view.passable(1));
        view.on_notice(&Notice::FreshnessLost);
        assert!(!view.passable(1), "a stale view must not be trusted");
        view.on_notice(&Notice::FreshnessRestored);
        assert!(view.passable(1));
    }

    #[test]
    fn unknown_entities_are_not_passable() {
        let view = TerrainView::new();
        assert!(!view.passable(99));
    }
}
