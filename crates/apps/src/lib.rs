//! Applications of LBRM from §4 of the paper.
//!
//! Each module is an application layer over the `lbrm-core` machines:
//! payload codecs plus application state that consumes the receiver's
//! [`Delivery`](lbrm_core::machine::Delivery) and
//! [`Notice`](lbrm_core::machine::Notice) streams. They run unchanged
//! over the simulator (`lbrm-sim` + the facade's harness) and the tokio
//! transports (`lbrm-net`).
//!
//! * [`invalidation`] — WWW page invalidation (§4.3 and Appendix A): an
//!   HTTP server multicasts `TRANS/RETRANS ... UPDATE` messages; browser
//!   caches highlight RELOAD, optionally auto-refreshing from a
//!   piggybacked document body.
//! * [`filecache`] — distributed file caching without leases (§4.2):
//!   reliable invalidation channel per file server, cache dropped on
//!   loss of the server heartbeat.
//! * [`quotes`] — stock-quote / traffic-report dissemination (§4.1):
//!   last-value-wins boards with freshness tracking.
//! * [`factory`] — factory automation (§4.4): sensors with built-in
//!   audit logging and intermittently connected mobile monitors.
//! * [`terrain`] — the motivating DIS application (§1): terrain entities
//!   whose destruction events must reach every simulator within a
//!   fraction of a second.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factory;
pub mod filecache;
pub mod invalidation;
pub mod quotes;
pub mod terrain;
