//! Stock-quote and traffic-report dissemination (§4.1).
//!
//! Clients cache data from a server; whenever the server updates, caches
//! must be reliably refreshed. Quotes are last-value-wins: a recovered
//! (retransmitted) quote must never overwrite a newer one that arrived
//! in the meantime, so each quote carries the server's publication
//! counter and the board keeps the max.

use std::collections::HashMap;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lbrm_core::machine::{Actions, Delivery};
use lbrm_core::receiver::Receiver;
use lbrm_core::sender::Sender;
use lbrm_core::time::Time;

/// One quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Ticker symbol.
    pub symbol: String,
    /// Price in cents (exact).
    pub price_cents: u64,
    /// Server-side publication counter (monotone per symbol).
    pub revision: u64,
}

/// Encodes a quote payload.
pub fn encode_quote(q: &Quote) -> Bytes {
    let mut b = BytesMut::with_capacity(2 + q.symbol.len() + 16);
    b.put_u16(q.symbol.len() as u16);
    b.put_slice(q.symbol.as_bytes());
    b.put_u64(q.price_cents);
    b.put_u64(q.revision);
    b.freeze()
}

/// Decodes a quote payload.
pub fn decode_quote(mut payload: &[u8]) -> Option<Quote> {
    if payload.remaining() < 2 {
        return None;
    }
    let len = payload.get_u16() as usize;
    if payload.remaining() < len + 16 {
        return None;
    }
    let symbol = String::from_utf8(payload[..len].to_vec()).ok()?;
    payload.advance(len);
    let price_cents = payload.get_u64();
    let revision = payload.get_u64();
    Some(Quote {
        symbol,
        price_cents,
        revision,
    })
}

/// Publisher: a quote feed over an LBRM sender.
#[derive(Debug, Default)]
pub struct QuoteFeed {
    revisions: HashMap<String, u64>,
}

impl QuoteFeed {
    /// Creates an empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new price for `symbol`.
    pub fn publish(
        &mut self,
        sender: &mut Sender,
        now: Time,
        symbol: &str,
        price_cents: u64,
        out: &mut Actions,
    ) -> Quote {
        let rev = self.revisions.entry(symbol.to_owned()).or_insert(0);
        *rev += 1;
        let quote = Quote {
            symbol: symbol.to_owned(),
            price_cents,
            revision: *rev,
        };
        sender.send(now, encode_quote(&quote), out);
        quote
    }
}

/// Subscriber: the broker's terminal — latest quote per symbol.
#[derive(Debug, Default)]
pub struct QuoteBoard {
    latest: HashMap<String, Quote>,
    /// Quotes applied (newer revision than held).
    pub applied: u64,
    /// Stale quotes discarded (recovered but already superseded).
    pub superseded: u64,
}

impl QuoteBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latest quote for `symbol`.
    pub fn quote(&self, symbol: &str) -> Option<&Quote> {
        self.latest.get(symbol)
    }

    /// Applies a delivery; last-revision-wins.
    pub fn on_delivery(&mut self, d: &Delivery) {
        let Some(q) = decode_quote(&d.payload) else {
            return;
        };
        match self.latest.get(&q.symbol) {
            Some(held) if held.revision >= q.revision => self.superseded += 1,
            _ => {
                self.applied += 1;
                self.latest.insert(q.symbol.clone(), q);
            }
        }
    }

    /// How stale this board may be, given the receiver's channel state —
    /// the §1 "freshness" the application actually observes.
    pub fn staleness(&self, receiver: &Receiver, now: Time) -> Option<Duration> {
        receiver.staleness(now)
    }

    /// Number of symbols held.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// `true` when no quotes are held.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbrm_core::machine::Action;
    use lbrm_core::sender::SenderConfig;
    use lbrm_wire::{GroupId, HostId, Packet, Seq, SourceId};

    fn sender() -> Sender {
        Sender::new(SenderConfig::new(
            GroupId(3),
            SourceId(5),
            HostId(1),
            HostId(2),
        ))
    }

    fn deliveries_of(out: &Actions, recovered: bool) -> Vec<Delivery> {
        out.iter()
            .filter_map(|a| match a {
                Action::Multicast {
                    packet: Packet::Data { payload, seq, .. },
                    ..
                } => Some(Delivery {
                    seq: *seq,
                    payload: payload.clone(),
                    recovered,
                }),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        let q = Quote {
            symbol: "ACME".into(),
            price_cents: 123_456,
            revision: 9,
        };
        assert_eq!(decode_quote(&encode_quote(&q)), Some(q));
        assert_eq!(decode_quote(b"\x00"), None);
    }

    #[test]
    fn board_tracks_latest() {
        let mut feed = QuoteFeed::new();
        let mut s = sender();
        let mut board = QuoteBoard::new();
        let mut out = Actions::new();
        feed.publish(&mut s, Time::ZERO, "ACME", 100, &mut out);
        feed.publish(&mut s, Time::ZERO, "ACME", 105, &mut out);
        feed.publish(&mut s, Time::ZERO, "XYZ", 50, &mut out);
        for d in deliveries_of(&out, false) {
            board.on_delivery(&d);
        }
        assert_eq!(board.quote("ACME").unwrap().price_cents, 105);
        assert_eq!(board.quote("XYZ").unwrap().price_cents, 50);
        assert_eq!(board.len(), 2);
        assert_eq!(board.applied, 3);
    }

    #[test]
    fn recovered_stale_quote_never_regresses() {
        let mut feed = QuoteFeed::new();
        let mut s = sender();
        let mut board = QuoteBoard::new();
        let mut out1 = Actions::new();
        feed.publish(&mut s, Time::ZERO, "ACME", 100, &mut out1);
        let mut out2 = Actions::new();
        feed.publish(&mut s, Time::ZERO, "ACME", 110, &mut out2);
        // The newer quote arrives first; the older is recovered later.
        for d in deliveries_of(&out2, false) {
            board.on_delivery(&d);
        }
        for d in deliveries_of(&out1, true) {
            board.on_delivery(&d);
        }
        assert_eq!(board.quote("ACME").unwrap().price_cents, 110);
        assert_eq!(board.superseded, 1);
    }

    #[test]
    fn quotes_carry_lbrm_sequence_numbers() {
        let mut feed = QuoteFeed::new();
        let mut s = sender();
        let mut out = Actions::new();
        feed.publish(&mut s, Time::ZERO, "A", 1, &mut out);
        feed.publish(&mut s, Time::ZERO, "B", 2, &mut out);
        let seqs: Vec<Seq> = deliveries_of(&out, false).iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![Seq(1), Seq(2)]);
    }
}
