//! Transports for LBRM: run the sans-IO protocol machines over real
//! sockets, driven by plain threads (no async runtime required).
//!
//! * [`addr`] — the transport addressing scheme: IPv4 socket addresses
//!   pack losslessly into [`lbrm_wire::HostId`]s, and multicast groups
//!   map onto administratively-scoped `239.195.0.0/16` addresses.
//! * [`hub`] — an in-process loopback transport (every endpoint in one
//!   process, zero configuration): ideal for tests, demos, and CI where
//!   multicast routing is unavailable.
//! * [`udp`] — the real thing: UDP multicast with TTL-scoped sends,
//!   matching the paper's deployment model.
//! * [`endpoint`] — the driver that owns a machine and a transport,
//!   translating packets, timers and application commands.
//!
//! The same [`lbrm_core::Machine`] values run unchanged under the
//! deterministic simulator (`lbrm-sim`) and these transports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod doctor;
pub mod endpoint;
pub mod hub;
pub mod lossy;
pub mod pool;
pub mod udp;

pub use addr::{addr_of, host_of, GroupMap};
pub use doctor::{publish_recv_gauges, publish_send_gauges, recv_gauge_probe, send_gauge_probe};
pub use endpoint::{Endpoint, EndpointEvent, EndpointHandle};
pub use hub::{Hub, HubTransport};
pub use lossy::LossyTransport;
pub use pool::{BufferPool, PooledBuf};
pub use udp::{truncation_error, RecvCounters, SendCounters, UdpTransport};

use std::io;
use std::time::Duration;

use lbrm_wire::{GroupId, HostId, Packet, TtlScope};

/// A packet transport: how an endpoint reaches the world.
///
/// Implementations: [`UdpTransport`] (real UDP multicast) and
/// [`HubTransport`] (in-process). All calls are synchronous; the
/// endpoint driver multiplexes receives against protocol timers by
/// bounding each [`recv_timeout`](Transport::recv_timeout) wait.
pub trait Transport: Send + 'static {
    /// The local host identity packets will carry.
    fn local_host(&self) -> HostId;

    /// Sends one packet to one host.
    fn send_unicast(&mut self, to: HostId, packet: &Packet) -> io::Result<()>;

    /// Multicasts one packet to its group at the given scope.
    fn send_multicast(&mut self, scope: TtlScope, packet: &Packet) -> io::Result<()>;

    /// Sends a run of packets to one host, bundling them into shared
    /// datagrams where the transport supports it (see
    /// [`lbrm_wire::BundleBuilder`]). The default sends one datagram
    /// per packet; either way the receiver observes the same packets in
    /// the same order, so protocol semantics never depend on bundling.
    fn send_unicast_bundle(&mut self, to: HostId, packets: &[Packet]) -> io::Result<()> {
        for p in packets {
            self.send_unicast(to, p)?;
        }
        Ok(())
    }

    /// Multicasts a run of packets at one scope, bundling where
    /// supported. Packets may span groups; bundling transports flush at
    /// every group boundary so each frame goes to a single destination.
    /// The default sends one datagram per packet.
    fn send_multicast_bundle(&mut self, scope: TtlScope, packets: &[Packet]) -> io::Result<()> {
        for p in packets {
            self.send_multicast(scope, p)?;
        }
        Ok(())
    }

    /// Sends one packet to many hosts. Transports with an encoded-bytes
    /// fast path encode once and transmit N times; the default encodes
    /// per destination via [`send_unicast`](Transport::send_unicast).
    fn send_unicast_fanout(&mut self, dests: &[HostId], packet: &Packet) -> io::Result<()> {
        for &to in dests {
            self.send_unicast(to, packet)?;
        }
        Ok(())
    }

    /// Waits up to `timeout` for the next packet addressed to this
    /// endpoint; `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<(HostId, Packet)>>;

    /// Joins a multicast group.
    fn join(&mut self, group: GroupId) -> io::Result<()>;

    /// Leaves a multicast group.
    fn leave(&mut self, group: GroupId) -> io::Result<()>;
}
