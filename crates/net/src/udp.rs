//! Real UDP multicast transport (threads + `std::net`).
//!
//! One ephemeral unicast socket is the endpoint's identity (its address
//! packs into the [`HostId`] carried in packets), and each joined group
//! is served by a per-port receive socket bound to the group port. A
//! reader thread per socket decodes datagrams into a channel; corrupt
//! datagrams are dropped at the wire layer, and self-echoed multicast
//! (loopback is left enabled so several endpoints can share one machine)
//! is filtered by source address. Multicast sends set the IP TTL from
//! the [`TtlScope`], so site-scoped repairs really do stay site-local
//! (§2.2.1).
//!
//! Because plain `std::net` cannot set `SO_REUSEPORT` before binding,
//! endpoints in the *same process* share one OS socket per group port
//! through a process-local registry that fans received datagrams out to
//! every subscribed transport. Separate processes on one machine still
//! need one port per process; distinct machines are unaffected.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use lbrm_wire::{
    decode_bundle, decode_bytes, encode_into, is_bundle, BundleBuilder, BundleMode, GroupId,
    HostId, Packet, TtlScope, MAX_PACKET_SIZE,
};

use crate::addr::{addr_of, host_of, GroupMap};
use crate::pool::BufferPool;
use crate::Transport;

/// How often reader threads wake to check for shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

/// Receive buffers are one byte larger than the biggest valid packet, so
/// `recv_from` filling the whole buffer is an unambiguous truncation
/// signal — a datagram of exactly [`MAX_PACKET_SIZE`] bytes still reads
/// with headroom and is never misflagged.
const RECV_BUF_SIZE: usize = MAX_PACKET_SIZE + 1;

/// Process-wide recycling pool for reader-thread receive buffers; the
/// cap bounds idle memory at a handful of max-size datagram buffers no
/// matter how many short-lived reader threads come and go.
static RECV_POOL: BufferPool = BufferPool::new(RECV_BUF_SIZE, 8);

type PacketTx = mpsc::Sender<(HostId, Packet)>;

/// Receive-path health counters for one endpoint, shared with its reader
/// threads. Datagrams dropped before decoding used to vanish silently;
/// these counters make the drops observable so an operator can tell
/// "peer sends garbage" apart from "peer sends packets bigger than the
/// receive buffer".
#[derive(Debug, Default)]
pub struct RecvCounters {
    truncated: AtomicU64,
    decode_errors: AtomicU64,
}

impl RecvCounters {
    /// Datagrams dropped because they overflowed the receive buffer
    /// (larger than [`MAX_PACKET_SIZE`], so never decodable).
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Well-sized datagrams that failed wire decoding.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }
}

/// Send-path counters for one endpoint, the outbound mirror of
/// [`RecvCounters`]. With bundling on, `datagrams` and `packets`
/// diverge — their ratio is the live measure of how much framing
/// overhead bundling is saving.
#[derive(Debug, Default)]
pub struct SendCounters {
    datagrams: AtomicU64,
    packets: AtomicU64,
    bytes: AtomicU64,
    errors: AtomicU64,
}

impl SendCounters {
    /// Datagrams handed to the socket.
    pub fn datagrams(&self) -> u64 {
        self.datagrams.load(Ordering::Relaxed)
    }

    /// Protocol packets sent (each bundle datagram carries several).
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Wire bytes sent, including bundle framing.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Sends that failed — encoding errors (e.g. an oversized packet)
    /// and socket errors.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn count_frame(&self, packets: u64, bytes: usize) {
        self.datagrams.fetch_add(1, Ordering::Relaxed);
        self.packets.fetch_add(packets, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Transmits one already-encoded frame (a single packet or a sealed
/// bundle) and charges it to the send counters; the per-frame packet
/// count is read from the bundle header when present.
fn send_frame(
    sock: &UdpSocket,
    counters: &SendCounters,
    frame: &[u8],
    dst: SocketAddr,
) -> io::Result<()> {
    let packets = if is_bundle(frame) {
        u64::from(frame[3])
    } else {
        1
    };
    match sock.send_to(frame, dst) {
        Ok(_) => {
            counters.count_frame(packets, frame.len());
            Ok(())
        }
        Err(e) => {
            counters.count_error();
            Err(e)
        }
    }
}

/// The distinct error for a datagram that filled the receive buffer:
/// the payload was cut off by the OS, so a decode failure downstream
/// would misdiagnose the problem as peer corruption.
pub fn truncation_error(n: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "datagram truncated: {n} bytes filled the receive buffer \
             (valid packets are at most {MAX_PACKET_SIZE} bytes)"
        ),
    )
}

/// Classifies and decodes one received datagram, appending its packets
/// to `out` — one for a plain frame, several in order for a bundle
/// (`out` is untouched on error, so a corrupt bundle never delivers a
/// partial prefix). The datagram is copied into a [`Bytes`] once;
/// payload decoding slices that allocation zero-copy. `n == buf.len()`
/// means the OS truncated the datagram to fit — that is reported as the
/// distinct [`truncation_error`], not as a decode failure.
fn decode_datagram(buf: &[u8], n: usize, out: &mut Vec<Packet>) -> io::Result<()> {
    if n == buf.len() {
        return Err(truncation_error(n));
    }
    let data = Bytes::copy_from_slice(&buf[..n]);
    if is_bundle(&data) {
        let packets = decode_bundle(&data)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.extend(packets);
    } else {
        let packet = decode_bytes(data)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push(packet);
    }
    Ok(())
}

/// Charges one receive failure to `counters`, keyed by whether it was a
/// truncation (see [`decode_datagram`]).
fn count_recv_error(counters: &RecvCounters, err: &io::Error) {
    if err.to_string().starts_with("datagram truncated") {
        counters.truncated.fetch_add(1, Ordering::Relaxed);
    } else {
        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// One blocking receive step shared by both reader loops: reads a
/// datagram into `buf`, classifies truncation vs decode failure
/// (charging drops to `counters`), and on success appends the decoded
/// packets to `out` (several for a bundle) and returns the sender.
/// `Ok(None)` means "nothing deliverable this tick" (timeout, non-IPv4
/// source, or a counted drop); `Err` is a fatal socket error.
pub(crate) fn recv_step(
    sock: &UdpSocket,
    buf: &mut [u8],
    out: &mut Vec<Packet>,
    counters: &RecvCounters,
) -> io::Result<Option<HostId>> {
    let (n, from) = match sock.recv_from(buf) {
        Ok(v) => v,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(None);
        }
        Err(e) => return Err(e),
    };
    let SocketAddr::V4(from) = from else {
        return Ok(None);
    };
    match decode_datagram(buf, n, out) {
        Ok(()) => Ok(Some(host_of(from))),
        Err(e) => {
            count_recv_error(counters, &e);
            Ok(None)
        }
    }
}

/// One subscriber of a shared group-port socket: the transport's local
/// identity (for self-echo filtering), its delivery channel, and its
/// receive-health counters.
struct Subscriber {
    me: HostId,
    tx: PacketTx,
    counters: Arc<RecvCounters>,
}

/// A shared receive socket for one group port, fanned out to every
/// in-process transport that joined a group on that port.
struct PortSocket {
    sock: Arc<UdpSocket>,
    subscribers: Arc<Mutex<Vec<Subscriber>>>,
    /// (group ip, interface) join reference counts.
    joins: HashMap<(Ipv4Addr, Ipv4Addr), usize>,
    stop: Arc<AtomicBool>,
}

fn registry() -> &'static Mutex<HashMap<u16, PortSocket>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u16, PortSocket>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Subscribes `(me, tx)` to the shared socket for `port`, creating the
/// socket and its reader thread on first use, and records a membership
/// join of `group_ip` on `interface`.
fn port_join(
    port: u16,
    group_ip: Ipv4Addr,
    interface: Ipv4Addr,
    me: HostId,
    tx: PacketTx,
    counters: Arc<RecvCounters>,
) -> io::Result<()> {
    let mut reg = lock(registry());
    let entry = match reg.entry(port) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let sock = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))?;
            sock.set_read_timeout(Some(READ_TICK))?;
            let sock = Arc::new(sock);
            let subscribers: Arc<Mutex<Vec<Subscriber>>> = Arc::new(Mutex::new(Vec::new()));
            let stop = Arc::new(AtomicBool::new(false));
            {
                let sock = Arc::clone(&sock);
                let subscribers = Arc::clone(&subscribers);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || fanout_loop(&sock, &subscribers, &stop));
            }
            v.insert(PortSocket {
                sock,
                subscribers,
                joins: HashMap::new(),
                stop,
            })
        }
    };
    let count = entry.joins.entry((group_ip, interface)).or_insert(0);
    if *count == 0 {
        entry.sock.join_multicast_v4(&group_ip, &interface)?;
    }
    *count += 1;
    lock(&entry.subscribers).push(Subscriber { me, tx, counters });
    Ok(())
}

/// Reverses one [`port_join`]: drops the subscription and leaves the
/// group when its refcount hits zero; tears the socket down when the
/// last subscriber is gone.
fn port_leave(port: u16, group_ip: Ipv4Addr, interface: Ipv4Addr, me: HostId) -> io::Result<()> {
    let mut reg = lock(registry());
    let Some(entry) = reg.get_mut(&port) else {
        return Ok(());
    };
    {
        let mut subs = lock(&entry.subscribers);
        if let Some(pos) = subs.iter().position(|s| s.me == me) {
            subs.remove(pos);
        }
    }
    if let Some(count) = entry.joins.get_mut(&(group_ip, interface)) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            entry.joins.remove(&(group_ip, interface));
            let _ = entry.sock.leave_multicast_v4(&group_ip, &interface);
        }
    }
    if lock(&entry.subscribers).is_empty() {
        entry.stop.store(true, Ordering::Relaxed);
        reg.remove(&port);
    }
    Ok(())
}

/// Decodes datagrams from the shared socket and fans them out to every
/// subscriber except the one that sent them. Drops (truncation, decode
/// failure) are charged to every subscriber that would have received the
/// datagram, so each endpoint's stats reflect traffic *it* lost.
fn fanout_loop(sock: &UdpSocket, subscribers: &Mutex<Vec<Subscriber>>, stop: &AtomicBool) {
    let mut buf = RECV_POOL.take();
    let mut packets: Vec<Packet> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let (n, from) = match sock.recv_from(&mut buf) {
            Ok(v) => v,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let SocketAddr::V4(from) = from else { continue };
        let from = host_of(from);
        packets.clear();
        match decode_datagram(&buf, n, &mut packets) {
            Ok(()) => {
                let subs = lock(subscribers);
                for s in subs.iter() {
                    if s.me != from {
                        for packet in &packets {
                            let _ = s.tx.send((from, packet.clone()));
                        }
                    }
                }
            }
            Err(e) => {
                let subs = lock(subscribers);
                for s in subs.iter() {
                    if s.me != from {
                        count_recv_error(&s.counters, &e);
                    }
                }
            }
        }
    }
}

/// Reads unicast datagrams addressed to one endpoint.
fn unicast_loop(
    sock: &UdpSocket,
    tx: &PacketTx,
    me: HostId,
    counters: &RecvCounters,
    stop: &AtomicBool,
) {
    let mut buf = RECV_POOL.take();
    let mut packets: Vec<Packet> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match recv_step(sock, &mut buf, &mut packets, counters) {
            Ok(Some(from)) => {
                if from == me {
                    packets.clear();
                    continue; // multicast loopback echo of our own send
                }
                for packet in packets.drain(..) {
                    if tx.send((from, packet)).is_err() {
                        return;
                    }
                }
            }
            Ok(None) => continue,
            Err(_) => return,
        }
    }
}

/// A UDP transport.
pub struct UdpTransport {
    unicast: Arc<UdpSocket>,
    host: HostId,
    groups: GroupMap,
    interface: Ipv4Addr,
    rx: mpsc::Receiver<(HostId, Packet)>,
    tx: PacketTx,
    members: Vec<GroupId>,
    counters: Arc<RecvCounters>,
    send: Arc<SendCounters>,
    /// Reusable encode scratch: steady-state sends reuse this buffer's
    /// capacity instead of allocating per packet.
    scratch: BytesMut,
    bundler: BundleBuilder,
    bundle: BundleMode,
    stop: Arc<AtomicBool>,
}

impl UdpTransport {
    /// Binds a transport on `interface` (use `127.0.0.1` for single-host
    /// loopback testing, a LAN address or `0.0.0.0` for deployment).
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(interface: Ipv4Addr, groups: GroupMap) -> io::Result<Self> {
        let unicast = UdpSocket::bind(SocketAddrV4::new(interface, 0))?;
        unicast.set_read_timeout(Some(READ_TICK))?;
        let unicast = Arc::new(unicast);
        let local = match unicast.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => {
                return Err(io::Error::new(io::ErrorKind::Unsupported, "IPv6 bind"))
            }
        };
        let advertised = SocketAddrV4::new(interface, local.port());
        let host = host_of(advertised);
        let (tx, rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(RecvCounters::default());
        {
            let sock = Arc::clone(&unicast);
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || unicast_loop(&sock, &tx, host, &counters, &stop));
        }
        Ok(UdpTransport {
            unicast,
            host,
            groups,
            interface,
            rx,
            tx,
            members: Vec::new(),
            counters,
            send: Arc::new(SendCounters::default()),
            scratch: BytesMut::with_capacity(2048),
            bundler: BundleBuilder::with_default_mtu(),
            bundle: BundleMode::from_env(),
            stop,
        })
    }

    /// The local unicast address peers reply to.
    pub fn local_addr(&self) -> SocketAddrV4 {
        addr_of(self.host)
    }

    /// Receive-path health counters: truncated and undecodable datagrams
    /// dropped by this endpoint's reader threads.
    pub fn recv_counters(&self) -> &RecvCounters {
        &self.counters
    }

    /// A shared handle to the same counters, for probes that outlive a
    /// borrow of the transport (the doctor sidecar reads them from its
    /// own thread each tick).
    pub fn shared_recv_counters(&self) -> Arc<RecvCounters> {
        Arc::clone(&self.counters)
    }

    /// Send-path counters: datagrams, packets, bytes and errors on this
    /// endpoint's outbound sends.
    pub fn send_counters(&self) -> &SendCounters {
        &self.send
    }

    /// A shared handle to the send counters (see
    /// [`shared_recv_counters`](Self::shared_recv_counters)).
    pub fn shared_send_counters(&self) -> Arc<SendCounters> {
        Arc::clone(&self.send)
    }

    /// Whether bundle sends coalesce packets (set from `LBRM_BUNDLE` at
    /// bind).
    pub fn bundle_mode(&self) -> BundleMode {
        self.bundle
    }

    /// Overrides the `LBRM_BUNDLE`-derived bundling mode, e.g. for
    /// tests that must not depend on ambient environment.
    pub fn set_bundle_mode(&mut self, mode: BundleMode) {
        self.bundle = mode;
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for group in std::mem::take(&mut self.members) {
            let addr = self.groups.addr(group);
            let _ = port_leave(addr.port(), *addr.ip(), self.interface, self.host);
        }
    }
}

impl Transport for UdpTransport {
    fn local_host(&self) -> HostId {
        self.host
    }

    fn send_unicast(&mut self, to: HostId, packet: &Packet) -> io::Result<()> {
        self.scratch.clear();
        if let Err(e) = encode_into(packet, &mut self.scratch) {
            self.send.count_error();
            return Err(io::Error::other(e));
        }
        send_frame(
            &self.unicast,
            &self.send,
            &self.scratch,
            SocketAddr::V4(addr_of(to)),
        )
    }

    fn send_multicast(&mut self, scope: TtlScope, packet: &Packet) -> io::Result<()> {
        self.scratch.clear();
        if let Err(e) = encode_into(packet, &mut self.scratch) {
            self.send.count_error();
            return Err(io::Error::other(e));
        }
        let dst = self.groups.addr(packet.group());
        self.unicast.set_multicast_ttl_v4(u32::from(scope.ttl()))?;
        self.unicast.set_multicast_loop_v4(true)?;
        send_frame(
            &self.unicast,
            &self.send,
            &self.scratch,
            SocketAddr::V4(dst),
        )
    }

    fn send_unicast_bundle(&mut self, to: HostId, packets: &[Packet]) -> io::Result<()> {
        if !self.bundle.is_on() || packets.len() < 2 {
            for p in packets {
                self.send_unicast(to, p)?;
            }
            return Ok(());
        }
        let dst = SocketAddr::V4(addr_of(to));
        let bundler = &mut self.bundler;
        let unicast = &self.unicast;
        let send = &self.send;
        for p in packets {
            match bundler.push(p) {
                Ok(Some(frame)) => send_frame(unicast, send, frame, dst)?,
                Ok(None) => {}
                Err(e) => {
                    // The failing packet never entered the frame; flush
                    // the valid prefix so it still reaches `to`, then
                    // surface the error.
                    send.count_error();
                    if let Some(frame) = bundler.flush() {
                        send_frame(unicast, send, frame, dst)?;
                    }
                    return Err(io::Error::other(e));
                }
            }
        }
        if let Some(frame) = bundler.flush() {
            send_frame(unicast, send, frame, dst)?;
        }
        Ok(())
    }

    fn send_multicast_bundle(&mut self, scope: TtlScope, packets: &[Packet]) -> io::Result<()> {
        if !self.bundle.is_on() || packets.len() < 2 {
            for p in packets {
                self.send_multicast(scope, p)?;
            }
            return Ok(());
        }
        self.unicast.set_multicast_ttl_v4(u32::from(scope.ttl()))?;
        self.unicast.set_multicast_loop_v4(true)?;
        let bundler = &mut self.bundler;
        let unicast = &self.unicast;
        let send = &self.send;
        let groups = &self.groups;
        // A frame goes to exactly one destination, so flush at every
        // group boundary within the run.
        let mut cur: Option<SocketAddr> = None;
        for p in packets {
            let dst = SocketAddr::V4(groups.addr(p.group()));
            if cur != Some(dst) {
                if let Some(prev) = cur {
                    if let Some(frame) = bundler.flush() {
                        send_frame(unicast, send, frame, prev)?;
                    }
                }
                cur = Some(dst);
            }
            match bundler.push(p) {
                Ok(Some(frame)) => send_frame(unicast, send, frame, dst)?,
                Ok(None) => {}
                Err(e) => {
                    send.count_error();
                    if let Some(frame) = bundler.flush() {
                        send_frame(unicast, send, frame, dst)?;
                    }
                    return Err(io::Error::other(e));
                }
            }
        }
        if let Some(dst) = cur {
            if let Some(frame) = bundler.flush() {
                send_frame(unicast, send, frame, dst)?;
            }
        }
        Ok(())
    }

    fn send_unicast_fanout(&mut self, dests: &[HostId], packet: &Packet) -> io::Result<()> {
        self.scratch.clear();
        if let Err(e) = encode_into(packet, &mut self.scratch) {
            self.send.count_error();
            return Err(io::Error::other(e));
        }
        for &to in dests {
            send_frame(
                &self.unicast,
                &self.send,
                &self.scratch,
                SocketAddr::V4(addr_of(to)),
            )?;
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<(HostId, Packet)>> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Ok(Some(v)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "transport closed",
            )),
        }
    }

    fn join(&mut self, group: GroupId) -> io::Result<()> {
        if self.members.contains(&group) {
            return Ok(());
        }
        let addr = self.groups.addr(group);
        port_join(
            addr.port(),
            *addr.ip(),
            self.interface,
            self.host,
            self.tx.clone(),
            Arc::clone(&self.counters),
        )?;
        self.members.push(group);
        Ok(())
    }

    fn leave(&mut self, group: GroupId) -> io::Result<()> {
        if let Some(pos) = self.members.iter().position(|g| *g == group) {
            self.members.remove(pos);
            let addr = self.groups.addr(group);
            port_leave(addr.port(), *addr.ip(), self.interface, self.host)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lbrm_wire::{encode, encode_bundle, EpochId, Seq, SourceId, DEFAULT_BUNDLE_MTU};

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn truncation_is_a_distinct_error() {
        let buf = [0u8; 64];
        let mut out = Vec::new();
        // Buffer completely filled: truncation, not a decode failure.
        let err = decode_datagram(&buf, buf.len(), &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().starts_with("datagram truncated"),
            "unexpected message: {err}"
        );
        // Same bytes with headroom: a plain decode failure, so the two
        // failure modes stay distinguishable downstream.
        let err = decode_datagram(&buf, 32, &mut out).unwrap_err();
        assert!(!err.to_string().starts_with("datagram truncated"));
        assert!(out.is_empty(), "errors must not deliver packets");
    }

    #[test]
    fn count_recv_error_splits_truncation_from_decode() {
        let counters = RecvCounters::default();
        count_recv_error(&counters, &truncation_error(100));
        count_recv_error(
            &counters,
            &io::Error::new(io::ErrorKind::InvalidData, "bad magic"),
        );
        count_recv_error(&counters, &truncation_error(200));
        assert_eq!(counters.truncated(), 2);
        assert_eq!(counters.decode_errors(), 1);
    }

    /// Regression: a datagram larger than the receive buffer used to be
    /// silently cut short and handed to the decoder; it must instead be
    /// counted as truncated and never surface as a packet.
    #[test]
    fn oversized_send_is_counted_as_truncated() {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let dst = rx.local_addr().unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();

        let counters = RecvCounters::default();
        let mut buf = vec![0u8; 1024];
        let mut out = Vec::new();

        // Oversized relative to the receive buffer: the OS truncates the
        // datagram, recv_from reports a full buffer, and the drop lands
        // in the truncation counter.
        tx.send_to(&vec![0xAB; 2048], dst).unwrap();
        let got = recv_step(&rx, &mut buf, &mut out, &counters).unwrap();
        assert!(got.is_none(), "truncated datagram must not be delivered");
        assert!(out.is_empty());
        assert_eq!(counters.truncated(), 1);
        assert_eq!(counters.decode_errors(), 0);

        // The receive path keeps working: a valid packet after the
        // oversized one still decodes and carries the sender's address.
        let bytes = encode(&data(7)).unwrap();
        tx.send_to(&bytes, dst).unwrap();
        let from = recv_step(&rx, &mut buf, &mut out, &counters)
            .unwrap()
            .expect("valid packet after truncated one");
        let SocketAddr::V4(tx_addr) = tx.local_addr().unwrap() else {
            panic!("ipv4 bind");
        };
        assert_eq!(from, host_of(tx_addr));
        assert_eq!(out, vec![data(7)]);
        assert_eq!(counters.truncated(), 1);
    }

    /// A datagram of exactly [`MAX_PACKET_SIZE`] bytes must *not* be
    /// flagged as truncated: the receive buffer keeps one byte of
    /// headroom precisely so the largest valid packet reads clean.
    #[test]
    fn max_size_datagram_is_not_misflagged() {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let dst = rx.local_addr().unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        // Some environments cap datagram size below the UDP maximum;
        // skip (don't fail) when the send itself is refused.
        if let Err(e) = tx.send_to(&vec![0xCD; MAX_PACKET_SIZE], dst) {
            eprintln!("skipping max-size datagram test: send failed: {e}");
            return;
        }
        let counters = RecvCounters::default();
        let mut buf = vec![0u8; RECV_BUF_SIZE];
        let mut out = Vec::new();
        let got = recv_step(&rx, &mut buf, &mut out, &counters).unwrap();
        assert!(got.is_none(), "garbage payload must not decode");
        assert_eq!(
            counters.truncated(),
            0,
            "max-size datagram wrongly counted as truncated"
        );
        assert_eq!(counters.decode_errors(), 1);
    }

    /// A bundle datagram unbundles into its packets in order, through
    /// the same receive step that handles plain frames.
    #[test]
    fn bundle_datagram_unbundles_in_order() {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let dst = rx.local_addr().unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();

        let packets: Vec<Packet> = (1..=5).map(data).collect();
        let frames = encode_bundle(&packets, DEFAULT_BUNDLE_MTU).unwrap();
        assert_eq!(frames.len(), 1, "five tiny packets fit one frame");
        tx.send_to(&frames[0], dst).unwrap();

        let counters = RecvCounters::default();
        let mut buf = vec![0u8; RECV_BUF_SIZE];
        let mut out = Vec::new();
        let from = recv_step(&rx, &mut buf, &mut out, &counters)
            .unwrap()
            .expect("bundle must decode");
        let SocketAddr::V4(tx_addr) = tx.local_addr().unwrap() else {
            panic!("ipv4 bind");
        };
        assert_eq!(from, host_of(tx_addr));
        assert_eq!(out, packets, "unbundling must preserve packet order");
        assert_eq!(counters.decode_errors(), 0);
    }

    /// A corrupt bundle is one counted decode error and delivers no
    /// partial prefix of its packets.
    #[test]
    fn corrupt_bundle_delivers_nothing() {
        let packets: Vec<Packet> = (1..=3).map(data).collect();
        let mut frame = encode_bundle(&packets, DEFAULT_BUNDLE_MTU).unwrap()[0].to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut buf = vec![0u8; RECV_BUF_SIZE];
        buf[..frame.len()].copy_from_slice(&frame);
        let mut out = Vec::new();
        let err = decode_datagram(&buf, frame.len(), &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(out.is_empty(), "corrupt bundle must not deliver a prefix");
    }

    /// Send counters: one datagram per plain send, and with bundling on
    /// a run of packets collapses into fewer datagrams than packets.
    #[test]
    fn send_counters_track_datagrams_and_packets() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST, GroupMap::default()).unwrap();
        t.set_bundle_mode(BundleMode::Off);
        let peer = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let SocketAddr::V4(peer_addr) = peer.local_addr().unwrap() else {
            panic!("ipv4 bind");
        };
        let to = host_of(peer_addr);

        t.send_unicast(to, &data(1)).unwrap();
        t.send_unicast(to, &data(2)).unwrap();
        assert_eq!(t.send_counters().datagrams(), 2);
        assert_eq!(t.send_counters().packets(), 2);
        let wire = encode(&data(1)).unwrap().len() + encode(&data(2)).unwrap().len();
        assert_eq!(t.send_counters().bytes(), wire as u64);
        assert_eq!(t.send_counters().errors(), 0);

        // Bundling on: ten packets in one run become one datagram.
        t.set_bundle_mode(BundleMode::On);
        let run: Vec<Packet> = (10..20).map(data).collect();
        t.send_unicast_bundle(to, &run).unwrap();
        assert_eq!(t.send_counters().datagrams(), 3);
        assert_eq!(t.send_counters().packets(), 12);

        // Fanout: encode once, one datagram per destination.
        t.send_unicast_fanout(&[to, to, to], &data(30)).unwrap();
        assert_eq!(t.send_counters().datagrams(), 6);
        assert_eq!(t.send_counters().packets(), 15);
    }

    /// A packet too large for any datagram is rejected at encode time
    /// and lands in the send error counter — on both the plain path and
    /// the bundle path (where it must not corrupt the pending frame).
    #[test]
    fn oversized_packet_is_counted_as_send_error() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST, GroupMap::default()).unwrap();
        let peer = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let SocketAddr::V4(peer_addr) = peer.local_addr().unwrap() else {
            panic!("ipv4 bind");
        };
        let to = host_of(peer_addr);

        let oversized = Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(1),
            epoch: EpochId(0),
            payload: Bytes::from(vec![0u8; MAX_PACKET_SIZE]),
        };
        assert!(t.send_unicast(to, &oversized).is_err());
        assert_eq!(t.send_counters().errors(), 1);
        assert_eq!(t.send_counters().datagrams(), 0);

        // Bundle path: the valid prefix is flushed, the oversized
        // packet is rejected, and later sends still work.
        t.set_bundle_mode(BundleMode::On);
        let run = vec![data(1), data(2), oversized];
        assert!(t.send_unicast_bundle(to, &run).is_err());
        assert_eq!(t.send_counters().errors(), 2);
        assert_eq!(t.send_counters().datagrams(), 1, "valid prefix flushed");
        assert_eq!(t.send_counters().packets(), 2);
        t.send_unicast_bundle(to, &[data(3), data(4)]).unwrap();
        assert_eq!(t.send_counters().datagrams(), 2);
        assert_eq!(t.send_counters().packets(), 4);
    }
}
