//! Real UDP multicast transport.
//!
//! One ephemeral unicast socket is the endpoint's identity (its address
//! packs into the [`HostId`] carried in packets), and each joined group
//! gets a receive socket bound to the group port. A reader task per
//! socket decodes datagrams into a single channel; corrupt datagrams are
//! dropped at the wire layer, and self-echoed multicast (loopback is
//! left enabled so several endpoints can share one machine) is filtered
//! by source address. Multicast sends set the IP TTL from the
//! [`TtlScope`], so site-scoped repairs really do stay site-local
//! (§2.2.1).

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::Arc;

use tokio::net::UdpSocket;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

use lbrm_wire::{decode, encode, GroupId, HostId, Packet, TtlScope, MAX_PACKET_SIZE};

use crate::addr::{addr_of, host_of, GroupMap};
use crate::Transport;

/// A UDP transport.
pub struct UdpTransport {
    unicast: Arc<UdpSocket>,
    host: HostId,
    groups: GroupMap,
    interface: Ipv4Addr,
    rx: mpsc::Receiver<(HostId, Packet)>,
    tx: mpsc::Sender<(HostId, Packet)>,
    members: Vec<(GroupId, Arc<UdpSocket>, JoinHandle<()>)>,
    unicast_reader: JoinHandle<()>,
}

impl UdpTransport {
    /// Binds a transport on `interface` (use `127.0.0.1` for single-host
    /// loopback testing, a LAN address or `0.0.0.0` for deployment).
    pub async fn bind(interface: Ipv4Addr, groups: GroupMap) -> io::Result<Self> {
        let unicast = Arc::new(UdpSocket::bind(SocketAddrV4::new(interface, 0)).await?);
        let local = match unicast.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => {
                return Err(io::Error::new(io::ErrorKind::Unsupported, "IPv6 bind"))
            }
        };
        let advertised = SocketAddrV4::new(interface, local.port());
        let host = host_of(advertised);
        let (tx, rx) = mpsc::channel(1024);
        let unicast_reader = tokio::spawn(read_loop(unicast.clone(), tx.clone(), host));
        Ok(UdpTransport {
            unicast,
            host,
            groups,
            interface,
            rx,
            tx,
            members: Vec::new(),
            unicast_reader,
        })
    }

    /// The local unicast address peers reply to.
    pub fn local_addr(&self) -> SocketAddrV4 {
        addr_of(self.host)
    }
}

/// Decodes datagrams from `sock` into `tx`, dropping corrupt or
/// self-originated ones.
async fn read_loop(sock: Arc<UdpSocket>, tx: mpsc::Sender<(HostId, Packet)>, me: HostId) {
    let mut buf = vec![0u8; MAX_PACKET_SIZE];
    loop {
        let Ok((n, from)) = sock.recv_from(&mut buf).await else { return };
        let SocketAddr::V4(from) = from else { continue };
        let from = host_of(from);
        if from == me {
            continue; // multicast loopback echo of our own send
        }
        if let Ok(packet) = decode(&buf[..n]) {
            if tx.send((from, packet)).await.is_err() {
                return;
            }
        }
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.unicast_reader.abort();
        for (_, _, h) in &self.members {
            h.abort();
        }
    }
}

impl Transport for UdpTransport {
    fn local_host(&self) -> HostId {
        self.host
    }

    async fn send_unicast(&mut self, to: HostId, packet: &Packet) -> io::Result<()> {
        let bytes = encode(packet).map_err(io::Error::other)?;
        self.unicast.send_to(&bytes, SocketAddr::V4(addr_of(to))).await?;
        Ok(())
    }

    async fn send_multicast(&mut self, scope: TtlScope, packet: &Packet) -> io::Result<()> {
        let bytes = encode(packet).map_err(io::Error::other)?;
        let dst = self.groups.addr(packet.group());
        self.unicast.set_multicast_ttl_v4(u32::from(scope.ttl()))?;
        self.unicast.set_multicast_loop_v4(true)?;
        self.unicast.send_to(&bytes, SocketAddr::V4(dst)).await?;
        Ok(())
    }

    async fn recv(&mut self) -> io::Result<(HostId, Packet)> {
        self.rx
            .recv()
            .await
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "transport closed"))
    }

    fn join(&mut self, group: GroupId) -> io::Result<()> {
        if self.members.iter().any(|(g, _, _)| *g == group) {
            return Ok(());
        }
        let addr = self.groups.addr(group);
        let std_sock = bind_reuse(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, addr.port()))?;
        std_sock.set_nonblocking(true)?;
        let sock = UdpSocket::from_std(std_sock)?;
        sock.join_multicast_v4(*addr.ip(), self.interface)?;
        let sock = Arc::new(sock);
        let handle = tokio::spawn(read_loop(sock.clone(), self.tx.clone(), self.host));
        self.members.push((group, sock, handle));
        Ok(())
    }

    fn leave(&mut self, group: GroupId) -> io::Result<()> {
        if let Some(pos) = self.members.iter().position(|(g, _, _)| *g == group) {
            let (_, sock, handle) = self.members.remove(pos);
            handle.abort();
            let addr = self.groups.addr(group);
            sock.leave_multicast_v4(*addr.ip(), self.interface)?;
        }
        Ok(())
    }
}

/// Binds a UDP socket with `SO_REUSEADDR` (and `SO_REUSEPORT` where
/// available) so several endpoints on one machine can all listen on the
/// group port — required for single-host multicast testing.
fn bind_reuse(addr: SocketAddrV4) -> io::Result<std::net::UdpSocket> {
    use socket2::{Domain, Protocol, Socket, Type};
    let sock = Socket::new(Domain::IPV4, Type::DGRAM, Some(Protocol::UDP))?;
    sock.set_reuse_address(true)?;
    #[cfg(all(unix, not(target_os = "solaris"), not(target_os = "illumos")))]
    sock.set_reuse_port(true)?;
    sock.bind(&SocketAddr::V4(addr).into())?;
    Ok(sock.into())
}
