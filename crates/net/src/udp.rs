//! Real UDP multicast transport (threads + `std::net`).
//!
//! One ephemeral unicast socket is the endpoint's identity (its address
//! packs into the [`HostId`] carried in packets), and each joined group
//! is served by a per-port receive socket bound to the group port. A
//! reader thread per socket decodes datagrams into a channel; corrupt
//! datagrams are dropped at the wire layer, and self-echoed multicast
//! (loopback is left enabled so several endpoints can share one machine)
//! is filtered by source address. Multicast sends set the IP TTL from
//! the [`TtlScope`], so site-scoped repairs really do stay site-local
//! (§2.2.1).
//!
//! Because plain `std::net` cannot set `SO_REUSEPORT` before binding,
//! endpoints in the *same process* share one OS socket per group port
//! through a process-local registry that fans received datagrams out to
//! every subscribed transport. Separate processes on one machine still
//! need one port per process; distinct machines are unaffected.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use lbrm_wire::{decode, encode, GroupId, HostId, Packet, TtlScope, MAX_PACKET_SIZE};

use crate::addr::{addr_of, host_of, GroupMap};
use crate::Transport;

/// How often reader threads wake to check for shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

type PacketTx = mpsc::Sender<(HostId, Packet)>;

/// One subscriber of a shared group-port socket: the transport's local
/// identity (for self-echo filtering) and its delivery channel.
struct Subscriber {
    me: HostId,
    tx: PacketTx,
}

/// A shared receive socket for one group port, fanned out to every
/// in-process transport that joined a group on that port.
struct PortSocket {
    sock: Arc<UdpSocket>,
    subscribers: Arc<Mutex<Vec<Subscriber>>>,
    /// (group ip, interface) join reference counts.
    joins: HashMap<(Ipv4Addr, Ipv4Addr), usize>,
    stop: Arc<AtomicBool>,
}

fn registry() -> &'static Mutex<HashMap<u16, PortSocket>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u16, PortSocket>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Subscribes `(me, tx)` to the shared socket for `port`, creating the
/// socket and its reader thread on first use, and records a membership
/// join of `group_ip` on `interface`.
fn port_join(
    port: u16,
    group_ip: Ipv4Addr,
    interface: Ipv4Addr,
    me: HostId,
    tx: PacketTx,
) -> io::Result<()> {
    let mut reg = lock(registry());
    let entry = match reg.entry(port) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let sock = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))?;
            sock.set_read_timeout(Some(READ_TICK))?;
            let sock = Arc::new(sock);
            let subscribers: Arc<Mutex<Vec<Subscriber>>> = Arc::new(Mutex::new(Vec::new()));
            let stop = Arc::new(AtomicBool::new(false));
            {
                let sock = Arc::clone(&sock);
                let subscribers = Arc::clone(&subscribers);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || fanout_loop(&sock, &subscribers, &stop));
            }
            v.insert(PortSocket {
                sock,
                subscribers,
                joins: HashMap::new(),
                stop,
            })
        }
    };
    let count = entry.joins.entry((group_ip, interface)).or_insert(0);
    if *count == 0 {
        entry.sock.join_multicast_v4(&group_ip, &interface)?;
    }
    *count += 1;
    lock(&entry.subscribers).push(Subscriber { me, tx });
    Ok(())
}

/// Reverses one [`port_join`]: drops the subscription and leaves the
/// group when its refcount hits zero; tears the socket down when the
/// last subscriber is gone.
fn port_leave(port: u16, group_ip: Ipv4Addr, interface: Ipv4Addr, me: HostId) -> io::Result<()> {
    let mut reg = lock(registry());
    let Some(entry) = reg.get_mut(&port) else {
        return Ok(());
    };
    {
        let mut subs = lock(&entry.subscribers);
        if let Some(pos) = subs.iter().position(|s| s.me == me) {
            subs.remove(pos);
        }
    }
    if let Some(count) = entry.joins.get_mut(&(group_ip, interface)) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            entry.joins.remove(&(group_ip, interface));
            let _ = entry.sock.leave_multicast_v4(&group_ip, &interface);
        }
    }
    if lock(&entry.subscribers).is_empty() {
        entry.stop.store(true, Ordering::Relaxed);
        reg.remove(&port);
    }
    Ok(())
}

/// Decodes datagrams from the shared socket and fans them out to every
/// subscriber except the one that sent them.
fn fanout_loop(sock: &UdpSocket, subscribers: &Mutex<Vec<Subscriber>>, stop: &AtomicBool) {
    let mut buf = vec![0u8; MAX_PACKET_SIZE];
    while !stop.load(Ordering::Relaxed) {
        let (n, from) = match sock.recv_from(&mut buf) {
            Ok(v) => v,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let SocketAddr::V4(from) = from else { continue };
        let from = host_of(from);
        let Ok(packet) = decode(&buf[..n]) else {
            continue;
        };
        let subs = lock(subscribers);
        for s in subs.iter() {
            if s.me != from {
                let _ = s.tx.send((from, packet.clone()));
            }
        }
    }
}

/// Reads unicast datagrams addressed to one endpoint.
fn unicast_loop(sock: &UdpSocket, tx: &PacketTx, me: HostId, stop: &AtomicBool) {
    let mut buf = vec![0u8; MAX_PACKET_SIZE];
    while !stop.load(Ordering::Relaxed) {
        let (n, from) = match sock.recv_from(&mut buf) {
            Ok(v) => v,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let SocketAddr::V4(from) = from else { continue };
        let from = host_of(from);
        if from == me {
            continue; // multicast loopback echo of our own send
        }
        if let Ok(packet) = decode(&buf[..n]) {
            if tx.send((from, packet)).is_err() {
                return;
            }
        }
    }
}

/// A UDP transport.
pub struct UdpTransport {
    unicast: Arc<UdpSocket>,
    host: HostId,
    groups: GroupMap,
    interface: Ipv4Addr,
    rx: mpsc::Receiver<(HostId, Packet)>,
    tx: PacketTx,
    members: Vec<GroupId>,
    stop: Arc<AtomicBool>,
}

impl UdpTransport {
    /// Binds a transport on `interface` (use `127.0.0.1` for single-host
    /// loopback testing, a LAN address or `0.0.0.0` for deployment).
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(interface: Ipv4Addr, groups: GroupMap) -> io::Result<Self> {
        let unicast = UdpSocket::bind(SocketAddrV4::new(interface, 0))?;
        unicast.set_read_timeout(Some(READ_TICK))?;
        let unicast = Arc::new(unicast);
        let local = match unicast.local_addr()? {
            SocketAddr::V4(a) => a,
            SocketAddr::V6(_) => {
                return Err(io::Error::new(io::ErrorKind::Unsupported, "IPv6 bind"))
            }
        };
        let advertised = SocketAddrV4::new(interface, local.port());
        let host = host_of(advertised);
        let (tx, rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        {
            let sock = Arc::clone(&unicast);
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || unicast_loop(&sock, &tx, host, &stop));
        }
        Ok(UdpTransport {
            unicast,
            host,
            groups,
            interface,
            rx,
            tx,
            members: Vec::new(),
            stop,
        })
    }

    /// The local unicast address peers reply to.
    pub fn local_addr(&self) -> SocketAddrV4 {
        addr_of(self.host)
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for group in std::mem::take(&mut self.members) {
            let addr = self.groups.addr(group);
            let _ = port_leave(addr.port(), *addr.ip(), self.interface, self.host);
        }
    }
}

impl Transport for UdpTransport {
    fn local_host(&self) -> HostId {
        self.host
    }

    fn send_unicast(&mut self, to: HostId, packet: &Packet) -> io::Result<()> {
        let bytes = encode(packet).map_err(io::Error::other)?;
        self.unicast.send_to(&bytes, SocketAddr::V4(addr_of(to)))?;
        Ok(())
    }

    fn send_multicast(&mut self, scope: TtlScope, packet: &Packet) -> io::Result<()> {
        let bytes = encode(packet).map_err(io::Error::other)?;
        let dst = self.groups.addr(packet.group());
        self.unicast.set_multicast_ttl_v4(u32::from(scope.ttl()))?;
        self.unicast.set_multicast_loop_v4(true)?;
        self.unicast.send_to(&bytes, SocketAddr::V4(dst))?;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<(HostId, Packet)>> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Ok(Some(v)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "transport closed",
            )),
        }
    }

    fn join(&mut self, group: GroupId) -> io::Result<()> {
        if self.members.contains(&group) {
            return Ok(());
        }
        let addr = self.groups.addr(group);
        port_join(
            addr.port(),
            *addr.ip(),
            self.interface,
            self.host,
            self.tx.clone(),
        )?;
        self.members.push(group);
        Ok(())
    }

    fn leave(&mut self, group: GroupId) -> io::Result<()> {
        if let Some(pos) = self.members.iter().position(|g| *g == group) {
            self.members.remove(pos);
            let addr = self.groups.addr(group);
            port_leave(addr.port(), *addr.ip(), self.interface, self.host)?;
        }
        Ok(())
    }
}
