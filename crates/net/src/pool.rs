//! A small recycling pool for receive buffers.
//!
//! Reader threads need a full-size datagram buffer (just over 64 KiB)
//! for every socket they serve. Allocating one per loop iteration would
//! churn the allocator at packet rate; allocating one per thread for
//! the thread's whole life wastes nothing but leaves short-lived reader
//! threads (group joins that come and go) re-paying the zeroing cost.
//! The pool splits the difference: buffers are handed out as RAII
//! guards and recycled on drop, capped so an ephemeral burst of reader
//! threads cannot pin unbounded memory.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A fixed-size-buffer recycling pool. `const`-constructible so it can
/// back a `static` shared by all reader threads in the process.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    buf_size: usize,
    max_pooled: usize,
}

impl BufferPool {
    /// A pool of `buf_size`-byte buffers retaining at most `max_pooled`
    /// idle buffers.
    pub const fn new(buf_size: usize, max_pooled: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::new()),
            buf_size,
            max_pooled,
        }
    }

    /// Takes a buffer from the pool (or allocates a fresh one when the
    /// pool is empty). The buffer returns to the pool when the guard
    /// drops. Contents are *not* cleared between uses; callers must
    /// only read the bytes a receive actually filled.
    pub fn take(&self) -> PooledBuf<'_> {
        let buf = lock(&self.free)
            .pop()
            .unwrap_or_else(|| vec![0u8; self.buf_size]);
        debug_assert_eq!(buf.len(), self.buf_size);
        PooledBuf { buf, pool: self }
    }

    /// Idle buffers currently held by the pool.
    pub fn pooled(&self) -> usize {
        lock(&self.free).len()
    }

    fn put(&self, buf: Vec<u8>) {
        let mut free = lock(&self.free);
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard for a pooled buffer; derefs to `[u8]` and recycles the
/// buffer on drop.
#[derive(Debug)]
pub struct PooledBuf<'a> {
    buf: Vec<u8>,
    pool: &'a BufferPool,
}

impl Deref for PooledBuf<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for PooledBuf<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PooledBuf<'_> {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_on_drop() {
        let pool = BufferPool::new(64, 4);
        assert_eq!(pool.pooled(), 0);
        let ptr = {
            let buf = pool.take();
            assert_eq!(buf.len(), 64);
            buf.as_ptr() as usize
        };
        assert_eq!(pool.pooled(), 1, "dropped buffer must return to pool");
        let again = pool.take();
        assert_eq!(pool.pooled(), 0);
        assert_eq!(
            again.as_ptr() as usize,
            ptr,
            "same allocation must be reused, not reallocated"
        );
    }

    #[test]
    fn pool_is_capped_at_max_pooled() {
        let pool = BufferPool::new(16, 2);
        let a = pool.take();
        let b = pool.take();
        let c = pool.take();
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.pooled(), 2, "pool must not retain beyond its cap");
    }

    #[test]
    fn concurrent_takes_get_distinct_buffers() {
        let pool = BufferPool::new(32, 8);
        let a = pool.take();
        let b = pool.take();
        assert_ne!(a.as_ptr(), b.as_ptr());
        // Writes through one guard do not alias the other.
        drop(a);
        drop(b);
        assert_eq!(pool.pooled(), 2);
    }
}
