//! Transport addressing.
//!
//! The wire protocol identifies hosts by [`HostId`]. For the UDP
//! transport an IPv4 socket address packs losslessly into the 64-bit id
//! (`ip << 16 | port`), so unicast replies need no out-of-band registry —
//! a requester's id *is* its return address. Multicast groups map to
//! addresses in the administratively scoped `239.195.0.0/16` block (and
//! may be overridden per group).

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddrV4};

use lbrm_wire::{GroupId, HostId};

/// Packs an IPv4 socket address into a [`HostId`].
pub fn host_of(addr: SocketAddrV4) -> HostId {
    let ip = u32::from(*addr.ip());
    HostId((u64::from(ip) << 16) | u64::from(addr.port()))
}

/// Unpacks a [`HostId`] produced by [`host_of`].
pub fn addr_of(host: HostId) -> SocketAddrV4 {
    let ip = Ipv4Addr::from((host.raw() >> 16) as u32);
    let port = (host.raw() & 0xFFFF) as u16;
    SocketAddrV4::new(ip, port)
}

/// Maps [`GroupId`]s to multicast socket addresses.
#[derive(Debug, Clone)]
pub struct GroupMap {
    port: u16,
    overrides: HashMap<GroupId, SocketAddrV4>,
}

impl GroupMap {
    /// Default data port for LBRM groups.
    pub const DEFAULT_PORT: u16 = 48_195;

    /// A map assigning every group a `239.195.x.y:port` address derived
    /// from its id.
    pub fn new(port: u16) -> Self {
        GroupMap {
            port,
            overrides: HashMap::new(),
        }
    }

    /// Overrides the address of one group.
    pub fn set(&mut self, group: GroupId, addr: SocketAddrV4) {
        self.overrides.insert(group, addr);
    }

    /// The multicast socket address of `group`.
    pub fn addr(&self, group: GroupId) -> SocketAddrV4 {
        if let Some(a) = self.overrides.get(&group) {
            return *a;
        }
        let raw = group.raw();
        let ip = Ipv4Addr::new(239, 195, (raw >> 8) as u8, raw as u8);
        SocketAddrV4::new(ip, self.port)
    }

    /// The port groups listen on.
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl Default for GroupMap {
    fn default() -> Self {
        GroupMap::new(Self::DEFAULT_PORT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_addr_roundtrip() {
        let addrs = [
            SocketAddrV4::new(Ipv4Addr::new(127, 0, 0, 1), 5000),
            SocketAddrV4::new(Ipv4Addr::new(10, 1, 2, 3), 65_535),
            SocketAddrV4::new(Ipv4Addr::new(255, 255, 255, 255), 1),
            SocketAddrV4::new(Ipv4Addr::new(0, 0, 0, 0), 0),
        ];
        for a in addrs {
            assert_eq!(addr_of(host_of(a)), a);
        }
    }

    #[test]
    fn distinct_addresses_distinct_hosts() {
        let a = host_of(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 9));
        let b = host_of(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 10));
        let c = host_of(SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 2), 9));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn group_map_derives_multicast_addresses() {
        let m = GroupMap::default();
        let a = m.addr(GroupId(1));
        assert!(a.ip().is_multicast());
        assert_eq!(*a.ip(), Ipv4Addr::new(239, 195, 0, 1));
        assert_eq!(a.port(), GroupMap::DEFAULT_PORT);
        assert_eq!(
            *m.addr(GroupId(0x1234)).ip(),
            Ipv4Addr::new(239, 195, 0x12, 0x34)
        );
    }

    #[test]
    fn group_map_overrides() {
        let mut m = GroupMap::new(7000);
        let custom = SocketAddrV4::new(Ipv4Addr::new(234, 12, 29, 72), 8000);
        m.set(GroupId(5), custom);
        assert_eq!(m.addr(GroupId(5)), custom);
        assert_eq!(m.addr(GroupId(6)).port(), 7000);
    }
}
