//! Glue between live UDP endpoints and the doctor sidecar.
//!
//! The trace-side sidecar (`lbrm_core::trace::doctor`) knows nothing
//! about transports; this module exports what the network layer can
//! see — per-endpoint [`RecvCounters`] — as [`MetricsRegistry`] gauges
//! so the admin surface's `/stats` and the self-audit reports carry
//! the receive-path health (truncated datagrams, decode failures)
//! next to the protocol forensics.

use std::sync::Arc;

use lbrm_core::trace::MetricsRegistry;
use lbrm_wire::HostId;

use crate::addr::addr_of;
use crate::udp::{RecvCounters, SendCounters};

/// Publishes one endpoint's receive counters as gauges named
/// `net.<addr>.recv.truncated` and `net.<addr>.recv.decode_errors`,
/// where `<addr>` is the endpoint's UDP address (derived from its
/// [`HostId`]). Idempotent: gauges are set, not accumulated, so the
/// caller can re-publish on every scrape.
pub fn publish_recv_gauges(host: HostId, counters: &RecvCounters, registry: &MetricsRegistry) {
    let addr = addr_of(host);
    registry.set_gauge(&format!("net.{addr}.recv.truncated"), counters.truncated());
    registry.set_gauge(
        &format!("net.{addr}.recv.decode_errors"),
        counters.decode_errors(),
    );
}

/// Builds a probe closure for
/// `DoctorSidecar::register_probe`: each tick (and each `/stats`
/// scrape) it re-publishes the endpoint's receive counters into the
/// given registry. Capture the counters with
/// [`UdpTransport::shared_recv_counters`](crate::UdpTransport::shared_recv_counters)
/// before handing the transport to its endpoint thread.
pub fn recv_gauge_probe(
    host: HostId,
    counters: Arc<RecvCounters>,
    registry: Arc<MetricsRegistry>,
) -> impl Fn() + Send + 'static {
    move || publish_recv_gauges(host, &counters, &registry)
}

/// Publishes one endpoint's send counters as gauges named
/// `net.<addr>.send.datagrams`, `.send.packets`, `.send.bytes` and
/// `.send.errors` — the outbound mirror of [`publish_recv_gauges`].
/// With bundling on, the datagrams/packets ratio on `/stats` shows the
/// framing savings live.
pub fn publish_send_gauges(host: HostId, counters: &SendCounters, registry: &MetricsRegistry) {
    let addr = addr_of(host);
    registry.set_gauge(&format!("net.{addr}.send.datagrams"), counters.datagrams());
    registry.set_gauge(&format!("net.{addr}.send.packets"), counters.packets());
    registry.set_gauge(&format!("net.{addr}.send.bytes"), counters.bytes());
    registry.set_gauge(&format!("net.{addr}.send.errors"), counters.errors());
}

/// Builds a probe closure re-publishing the endpoint's send counters on
/// every tick / `/stats` scrape; the outbound twin of
/// [`recv_gauge_probe`]. Capture the counters with
/// [`UdpTransport::shared_send_counters`](crate::UdpTransport::shared_send_counters)
/// before handing the transport to its endpoint thread.
pub fn send_gauge_probe(
    host: HostId,
    counters: Arc<SendCounters>,
    registry: Arc<MetricsRegistry>,
) -> impl Fn() + Send + 'static {
    move || publish_send_gauges(host, &counters, &registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::host_of;
    use crate::udp::recv_step;
    use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
    use std::time::Duration;

    /// An oversized datagram (relative to the receive buffer) must
    /// surface as a bump of the published truncation gauge. Real
    /// over-the-wire datagrams cannot exceed the UDP maximum, so the
    /// test shrinks the buffer instead of growing the send.
    #[test]
    fn oversized_datagram_bumps_the_truncation_gauge() {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let dst = rx.local_addr().unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();

        let counters = RecvCounters::default();
        let mut buf = vec![0u8; 1024];
        let mut out = Vec::new();
        tx.send_to(&vec![0xAB; 2048], dst).unwrap();
        let got = recv_step(&rx, &mut buf, &mut out, &counters).unwrap();
        assert!(got.is_none(), "truncated datagram must not be delivered");

        let SocketAddr::V4(rx_addr) = dst else {
            panic!("ipv4 bind");
        };
        let host = host_of(rx_addr);
        let registry = MetricsRegistry::default();
        publish_recv_gauges(host, &counters, &registry);

        let key = format!("net.{rx_addr}.recv.truncated");
        assert_eq!(registry.gauge(&key), 1, "missing gauge {key}");
        assert_eq!(
            registry.gauge(&format!("net.{rx_addr}.recv.decode_errors")),
            0
        );
    }

    /// Garbage that fits the buffer is a decode error, not truncation,
    /// and lands in the other gauge.
    #[test]
    fn decode_garbage_bumps_the_decode_gauge() {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let dst = rx.local_addr().unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();

        let counters = RecvCounters::default();
        let mut buf = vec![0u8; 1024];
        let mut out = Vec::new();
        tx.send_to(&[0xFF; 16], dst).unwrap();
        let got = recv_step(&rx, &mut buf, &mut out, &counters).unwrap();
        assert!(got.is_none(), "garbage must not decode");

        let SocketAddr::V4(rx_addr) = dst else {
            panic!("ipv4 bind");
        };
        let registry = MetricsRegistry::default();
        publish_recv_gauges(host_of(rx_addr), &counters, &registry);
        assert_eq!(registry.gauge(&format!("net.{rx_addr}.recv.truncated")), 0);
        assert_eq!(
            registry.gauge(&format!("net.{rx_addr}.recv.decode_errors")),
            1
        );
    }

    /// The probe closure re-publishes current values on every call.
    #[test]
    fn probe_republishes_on_each_call() {
        let counters = Arc::new(RecvCounters::default());
        let registry = Arc::new(MetricsRegistry::default());
        let host = HostId(0x7F00_0001_0000 | 4242);
        let addr = addr_of(host);
        let probe = recv_gauge_probe(host, Arc::clone(&counters), Arc::clone(&registry));
        probe();
        assert_eq!(registry.gauge(&format!("net.{addr}.recv.truncated")), 0);
        assert!(registry
            .gauges()
            .contains_key(&format!("net.{addr}.recv.decode_errors")));
    }

    /// Real sends through a transport surface in the published send
    /// gauges, including the datagrams/packets split bundling creates.
    #[test]
    fn send_gauges_reflect_transport_sends() {
        use crate::addr::GroupMap;
        use crate::udp::UdpTransport;
        use crate::Transport;
        use bytes::Bytes;
        use lbrm_wire::{BundleMode, EpochId, GroupId, Packet, Seq, SourceId};

        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST, GroupMap::default()).unwrap();
        t.set_bundle_mode(BundleMode::On);
        let host = t.local_host();
        let counters = t.shared_send_counters();
        let registry = Arc::new(MetricsRegistry::default());
        let probe = send_gauge_probe(host, counters, Arc::clone(&registry));

        let peer = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let SocketAddr::V4(peer_addr) = peer.local_addr().unwrap() else {
            panic!("ipv4 bind");
        };
        let packets: Vec<Packet> = (1..=6)
            .map(|seq| Packet::Data {
                group: GroupId(1),
                source: SourceId(1),
                seq: Seq(seq),
                epoch: EpochId(0),
                payload: Bytes::from_static(b"gauge"),
            })
            .collect();
        t.send_unicast_bundle(host_of(peer_addr), &packets).unwrap();

        probe();
        let addr = addr_of(host);
        assert_eq!(registry.gauge(&format!("net.{addr}.send.datagrams")), 1);
        assert_eq!(registry.gauge(&format!("net.{addr}.send.packets")), 6);
        assert!(registry.gauge(&format!("net.{addr}.send.bytes")) > 0);
        assert_eq!(registry.gauge(&format!("net.{addr}.send.errors")), 0);
    }
}
