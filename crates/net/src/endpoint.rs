//! The endpoint driver: one protocol machine + one transport + a thread.
//!
//! The driver loop mirrors what the simulator does deterministically:
//! feed arriving packets to the machine, call `poll` when its deadline
//! passes, execute the emitted actions. Applications interact through an
//! [`EndpointHandle`]: closures posted with
//! [`call`](EndpointHandle::call) run against the machine inside the
//! loop (e.g. `Sender::send`), and deliveries / notices stream back as
//! [`EndpointEvent`]s. Dropping the handle shuts the endpoint down.

use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lbrm_core::machine::{Action, Actions, Delivery, Machine, Notice};
use lbrm_core::time::Time;
use lbrm_wire::{
    bundled_entry_len, GroupId, Packet, TtlScope, BUNDLE_HEADER_LEN, DEFAULT_BUNDLE_MTU,
};

use crate::Transport;

/// An application-visible protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum EndpointEvent {
    /// A data packet reached the application.
    Delivery(Delivery),
    /// A protocol notice (loss detected, freshness lost, promotion, ...).
    Notice(Notice),
}

type Command<M> = Box<dyn FnOnce(&mut M, Time, &mut Actions) + Send>;

/// Upper bound on one receive wait, so posted commands are picked up
/// promptly even while the machine has no imminent deadline.
const MAX_WAIT: Duration = Duration::from_millis(10);

/// The application's handle to a running [`Endpoint`].
pub struct EndpointHandle<M> {
    cmd_tx: mpsc::Sender<Command<M>>,
    events: mpsc::Receiver<EndpointEvent>,
}

impl<M: Machine> EndpointHandle<M> {
    /// Runs `f` against the machine inside the endpoint loop.
    ///
    /// # Errors
    ///
    /// When the endpoint has shut down.
    pub fn call(
        &self,
        f: impl FnOnce(&mut M, Time, &mut Actions) + Send + 'static,
    ) -> io::Result<()> {
        self.cmd_tx
            .send(Box::new(f))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "endpoint closed"))
    }

    /// Receives the next event, blocking; `None` after shutdown.
    pub fn event(&mut self) -> Option<EndpointEvent> {
        self.events.recv().ok()
    }

    /// Receives the next event within `timeout`; `None` on timeout or
    /// shutdown.
    pub fn event_timeout(&mut self, timeout: Duration) -> Option<EndpointEvent> {
        self.events.recv_timeout(timeout).ok()
    }
}

/// A protocol machine bound to a transport, ready to run.
pub struct Endpoint<M: Machine, T: Transport> {
    machine: M,
    transport: T,
    groups: Vec<GroupId>,
    cmd_rx: mpsc::Receiver<Command<M>>,
    event_tx: mpsc::SyncSender<EndpointEvent>,
    origin: Option<Instant>,
    /// When set, multicast data packets are held up to this long so
    /// high-rate ticks coalesce into bundled datagrams.
    flush_delay: Option<Duration>,
    /// Held multicast data (uniform scope) awaiting a bundle flush.
    held: Vec<(TtlScope, Packet)>,
    held_bytes: usize,
    held_since: Option<Instant>,
    /// Reusable scratch for coalesced action runs.
    batch: Vec<Packet>,
}

impl<M: Machine + Send + 'static, T: Transport> Endpoint<M, T> {
    /// Pairs a machine with a transport; `groups` are joined at startup.
    pub fn new(machine: M, transport: T, groups: Vec<GroupId>) -> (Self, EndpointHandle<M>) {
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (event_tx, events) = mpsc::sync_channel(1024);
        (
            Endpoint {
                machine,
                transport,
                groups,
                cmd_rx,
                event_tx,
                origin: None,
                flush_delay: None,
                held: Vec::new(),
                held_bytes: 0,
                held_since: None,
                batch: Vec::new(),
            },
            EndpointHandle { cmd_tx, events },
        )
    }

    /// Attaches a protocol-event tracer to the machine (see
    /// `lbrm_core::trace`). Call before [`spawn`](Self::spawn) — e.g.
    /// with a live doctor sidecar's non-blocking sink.
    pub fn set_tracer(&mut self, tracer: lbrm_core::Tracer) {
        self.machine.set_tracer(tracer);
    }

    /// Pins the endpoint's time origin. Endpoints of one process that
    /// share an origin emit trace timestamps on a common clock, which
    /// is what lets a live doctor correlate recoveries *across*
    /// endpoint threads; without this each endpoint starts its clock
    /// when its thread happens to run.
    pub fn set_origin(&mut self, origin: Instant) {
        self.origin = Some(origin);
    }

    /// Enables send coalescing for high-rate tick streams: outgoing
    /// multicast data packets are held up to `delay` (and at most one
    /// MTU's worth) so consecutive ticks share bundled datagrams. Any
    /// other outgoing traffic flushes the held run first, so the wire
    /// order receivers observe is unchanged — the only cost is up to
    /// `delay` of added latency on held data. Off by default.
    pub fn set_flush_delay(&mut self, delay: Duration) {
        self.flush_delay = Some(delay);
    }

    /// Runs the endpoint on a new thread; join the handle for the exit
    /// status.
    pub fn spawn(self) -> std::thread::JoinHandle<io::Result<()>> {
        std::thread::spawn(move || self.run())
    }

    /// Runs the endpoint until the handle is dropped or the transport
    /// fails.
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub fn run(mut self) -> io::Result<()> {
        let origin = self.origin.unwrap_or_else(Instant::now);
        let now_fn = |origin: Instant| {
            Time::from_nanos(Instant::now().duration_since(origin).as_nanos() as u64)
        };
        for g in &self.groups {
            self.transport.join(*g)?;
        }
        let mut out = Actions::new();
        self.machine.on_start(now_fn(origin), &mut out);
        self.execute(&mut out)?;

        loop {
            // Drain pending application commands; a disconnected channel
            // means the handle is gone and the endpoint should exit.
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(cmd) => {
                        let now = now_fn(origin);
                        cmd(&mut self.machine, now, &mut out);
                        self.machine.poll(now, &mut out);
                        self.execute(&mut out)?;
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        // Shutdown: held data must still reach the wire.
                        self.flush_held()?;
                        return Ok(());
                    }
                }
            }

            let wait = match self.machine.next_deadline() {
                Some(t) => {
                    let now = now_fn(origin);
                    if t.nanos() <= now.nanos() {
                        Duration::ZERO
                    } else {
                        Duration::from_nanos(t.nanos() - now.nanos()).min(MAX_WAIT)
                    }
                }
                None => MAX_WAIT,
            };
            // A pending coalesced run bounds the wait too: held data
            // must flush within its delay even on an idle endpoint.
            let wait = match self.flush_deadline() {
                Some(d) => wait.min(d.saturating_duration_since(Instant::now())),
                None => wait,
            };
            if wait > Duration::ZERO {
                if let Some((from, packet)) = self.transport.recv_timeout(wait)? {
                    self.machine
                        .on_packet(now_fn(origin), from, packet, &mut out);
                    self.execute(&mut out)?;
                }
            }
            self.machine.poll(now_fn(origin), &mut out);
            self.execute(&mut out)?;
            if let Some(d) = self.flush_deadline() {
                if Instant::now() >= d {
                    self.flush_held()?;
                }
            }
        }
    }

    /// When the coalesced run must hit the wire at the latest.
    fn flush_deadline(&self) -> Option<Instant> {
        match (self.held_since, self.flush_delay) {
            (Some(since), Some(delay)) => Some(since + delay),
            _ => None,
        }
    }

    /// Sends the held multicast data run (a single bundled send when
    /// the transport supports it) and clears the hold state.
    fn flush_held(&mut self) -> io::Result<()> {
        self.held_since = None;
        self.held_bytes = 0;
        if self.held.is_empty() {
            return Ok(());
        }
        // All held packets share one scope: a scope change flushes
        // before holding the next packet.
        let scope = self.held[0].0;
        self.batch.clear();
        self.batch.extend(self.held.drain(..).map(|(_, p)| p));
        if self.batch.len() == 1 {
            self.transport.send_multicast(scope, &self.batch[0])
        } else {
            self.transport.send_multicast_bundle(scope, &self.batch)
        }
    }

    /// Holds one multicast data packet for delayed, coalesced sending;
    /// flushes eagerly once the run fills a bundle MTU.
    fn hold(&mut self, scope: TtlScope, packet: Packet) -> io::Result<()> {
        if self
            .held
            .first()
            .is_some_and(|(held_scope, _)| *held_scope != scope)
        {
            self.flush_held()?;
        }
        if self.held.is_empty() {
            self.held_since = Some(Instant::now());
        }
        self.held_bytes += bundled_entry_len(&packet);
        self.held.push((scope, packet));
        if self.held_bytes + BUNDLE_HEADER_LEN >= DEFAULT_BUNDLE_MTU {
            self.flush_held()?;
        }
        Ok(())
    }

    /// Executes a machine's emitted actions, coalescing consecutive
    /// sends to one destination into bundle-capable runs. The machine's
    /// emission order is preserved exactly: a run only extends while
    /// the next action targets the same destination, and held data is
    /// flushed before any other send, join, or leave.
    fn execute(&mut self, out: &mut Actions) -> io::Result<()> {
        let mut iter = out.drain(..).peekable();
        while let Some(action) = iter.next() {
            match action {
                Action::Unicast { to, packet } => {
                    self.flush_held()?;
                    self.batch.clear();
                    self.batch.push(packet);
                    while let Some(Action::Unicast { to: next, .. }) = iter.peek() {
                        if *next != to {
                            break;
                        }
                        let Some(Action::Unicast { packet, .. }) = iter.next() else {
                            unreachable!("peeked a unicast action");
                        };
                        self.batch.push(packet);
                    }
                    if self.batch.len() == 1 {
                        self.transport.send_unicast(to, &self.batch[0])?;
                    } else {
                        self.transport.send_unicast_bundle(to, &self.batch)?;
                    }
                }
                Action::Multicast { scope, packet } => {
                    if self.flush_delay.is_some() && matches!(packet, Packet::Data { .. }) {
                        self.hold(scope, packet)?;
                        continue;
                    }
                    self.flush_held()?;
                    self.batch.clear();
                    self.batch.push(packet);
                    while let Some(Action::Multicast { scope: next, .. }) = iter.peek() {
                        if *next != scope {
                            break;
                        }
                        let Some(Action::Multicast { packet, .. }) = iter.next() else {
                            unreachable!("peeked a multicast action");
                        };
                        self.batch.push(packet);
                    }
                    if self.batch.len() == 1 {
                        self.transport.send_multicast(scope, &self.batch[0])?;
                    } else {
                        self.transport.send_multicast_bundle(scope, &self.batch)?;
                    }
                }
                Action::Deliver(d) => {
                    // A slow or absent consumer must not wedge the
                    // protocol; drop events if the channel is full.
                    let _ = self.event_tx.try_send(EndpointEvent::Delivery(d));
                }
                Action::Notice(n) => {
                    let _ = self.event_tx.try_send(EndpointEvent::Notice(n));
                }
                Action::Join(g) => {
                    self.flush_held()?;
                    self.transport.join(g)?;
                }
                Action::Leave(g) => {
                    self.flush_held()?;
                    self.transport.leave(g)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Hub;
    use bytes::Bytes;
    use lbrm_core::logger::{Logger, LoggerConfig};
    use lbrm_core::receiver::{Receiver, ReceiverConfig};
    use lbrm_core::sender::{Sender, SenderConfig};
    use lbrm_wire::{HostId, Seq, SourceId};

    const GROUP: GroupId = GroupId(1);
    const SRC: SourceId = SourceId(1);
    const SRC_HOST: HostId = HostId(1);
    const LOG_HOST: HostId = HostId(2);
    const RX_HOST: HostId = HostId(3);

    struct Net {
        hub: Hub,
        sender: EndpointHandle<Sender>,
        _logger: EndpointHandle<Logger>,
        receiver: EndpointHandle<Receiver>,
    }

    fn spawn_net() -> Net {
        spawn_net_with(None)
    }

    fn spawn_net_with(flush_delay: Option<Duration>) -> Net {
        let hub = Hub::new();

        let (mut ep, sender) = Endpoint::new(
            Sender::new(SenderConfig::new(GROUP, SRC, SRC_HOST, LOG_HOST)),
            hub.attach(SRC_HOST),
            vec![],
        );
        if let Some(delay) = flush_delay {
            ep.set_flush_delay(delay);
        }
        ep.spawn();

        let (ep, logger) = Endpoint::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, LOG_HOST, SRC_HOST)),
            hub.attach(LOG_HOST),
            vec![GROUP],
        );
        ep.spawn();

        let (ep, receiver) = Endpoint::new(
            Receiver::new(ReceiverConfig::new(
                GROUP,
                SRC,
                RX_HOST,
                SRC_HOST,
                vec![LOG_HOST],
            )),
            hub.attach(RX_HOST),
            vec![GROUP],
        );
        ep.spawn();

        let net = Net {
            hub,
            sender,
            _logger: logger,
            receiver,
        };
        // Wait until the logger and receiver endpoints have joined the
        // group, so the first multicast reaches them.
        while net.hub.group_size(GROUP) < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        net
    }

    fn publish(net: &Net, payload: &'static str) {
        net.sender
            .call(move |s: &mut Sender, now, out| {
                s.send(now, Bytes::from_static(payload.as_bytes()), out)
            })
            .unwrap();
    }

    fn next_delivery(net: &mut Net) -> Option<Delivery> {
        loop {
            match net.receiver.event_timeout(Duration::from_secs(5))? {
                EndpointEvent::Delivery(d) => return Some(d),
                EndpointEvent::Notice(_) => continue,
            }
        }
    }

    #[test]
    fn publish_and_deliver_over_hub() {
        let mut net = spawn_net();
        publish(&net, "hello multicast");
        let d = next_delivery(&mut net).expect("delivery");
        assert_eq!(d.seq, Seq(1));
        assert_eq!(d.payload.as_ref(), b"hello multicast");
        assert!(!d.recovered);
    }

    /// With a flush delay, rapid sends are held and coalesced — but
    /// every payload still arrives, in order, exactly once.
    #[test]
    fn flush_delay_coalesces_rapid_sends_losslessly() {
        let mut net = spawn_net_with(Some(Duration::from_millis(2)));
        let payloads = ["b1", "b2", "b3", "b4", "b5"];
        for p in payloads {
            publish(&net, p);
        }
        for (i, want) in payloads.iter().enumerate() {
            let d = next_delivery(&mut net).expect("delivery");
            assert_eq!(d.seq, Seq(i as u32 + 1));
            assert_eq!(d.payload.as_ref(), want.as_bytes());
        }
    }

    #[test]
    fn recovery_through_logger_after_partition() {
        let mut net = spawn_net();
        publish(&net, "one");
        assert_eq!(next_delivery(&mut net).unwrap().seq, Seq(1));

        // Partition the receiver while #2 goes out; the logger still
        // hears it.
        net.hub.set_partitioned(RX_HOST, true);
        publish(&net, "two");
        std::thread::sleep(Duration::from_millis(50));
        net.hub.set_partitioned(RX_HOST, false);

        // #3 reveals the gap; the receiver recovers #2 from the logger.
        publish(&net, "three");
        let mut got = Vec::new();
        while got.len() < 2 {
            let d = next_delivery(&mut net).expect("delivery");
            got.push((d.seq.raw(), d.recovered));
        }
        got.sort();
        assert_eq!(got[0], (2, true), "{got:?}");
        assert_eq!(got[1], (3, false));
    }

    #[test]
    fn handle_drop_shuts_endpoint_down() {
        let hub = Hub::new();
        let (ep, handle) = Endpoint::new(
            Receiver::new(ReceiverConfig::new(
                GROUP,
                SRC,
                RX_HOST,
                SRC_HOST,
                vec![LOG_HOST],
            )),
            hub.attach(RX_HOST),
            vec![GROUP],
        );
        let task = ep.spawn();
        drop(handle);
        let deadline = Instant::now() + Duration::from_secs(2);
        while !task.is_finished() {
            assert!(
                Instant::now() < deadline,
                "endpoint must exit after handle drop"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            matches!(task.join(), Ok(Ok(()))),
            "endpoint must exit cleanly"
        );
    }
}
