//! The endpoint driver: one protocol machine + one transport + tokio.
//!
//! The driver loop mirrors what the simulator does deterministically:
//! feed arriving packets to the machine, call `poll` when its deadline
//! passes, execute the emitted actions. Applications interact through an
//! [`EndpointHandle`]: closures posted with
//! [`call`](EndpointHandle::call) run against the machine inside the
//! loop (e.g. `Sender::send`), and deliveries / notices stream back as
//! [`EndpointEvent`]s.

use std::io;
use std::time::Duration;

use tokio::sync::mpsc;
use tokio::time::Instant;

use lbrm_core::machine::{Action, Actions, Delivery, Machine, Notice};
use lbrm_core::time::Time;
use lbrm_wire::GroupId;

use crate::Transport;

/// An application-visible protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum EndpointEvent {
    /// A data packet reached the application.
    Delivery(Delivery),
    /// A protocol notice (loss detected, freshness lost, promotion, ...).
    Notice(Notice),
}

type Command<M> = Box<dyn FnOnce(&mut M, Time, &mut Actions) + Send>;

/// The application's handle to a running [`Endpoint`].
pub struct EndpointHandle<M> {
    cmd_tx: mpsc::Sender<Command<M>>,
    events: mpsc::Receiver<EndpointEvent>,
}

impl<M: Machine> EndpointHandle<M> {
    /// Runs `f` against the machine inside the endpoint loop.
    ///
    /// # Errors
    ///
    /// When the endpoint has shut down.
    pub async fn call(
        &self,
        f: impl FnOnce(&mut M, Time, &mut Actions) + Send + 'static,
    ) -> io::Result<()> {
        self.cmd_tx
            .send(Box::new(f))
            .await
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "endpoint closed"))
    }

    /// Receives the next event, or `None` after shutdown.
    pub async fn event(&mut self) -> Option<EndpointEvent> {
        self.events.recv().await
    }

    /// Receives the next event within `timeout`.
    pub async fn event_timeout(&mut self, timeout: Duration) -> Option<EndpointEvent> {
        tokio::time::timeout(timeout, self.events.recv()).await.ok().flatten()
    }
}

/// A protocol machine bound to a transport, ready to run.
pub struct Endpoint<M: Machine, T: Transport> {
    machine: M,
    transport: T,
    groups: Vec<GroupId>,
    cmd_rx: mpsc::Receiver<Command<M>>,
    event_tx: mpsc::Sender<EndpointEvent>,
}

impl<M: Machine + Send + 'static, T: Transport> Endpoint<M, T> {
    /// Pairs a machine with a transport; `groups` are joined at startup.
    pub fn new(machine: M, transport: T, groups: Vec<GroupId>) -> (Self, EndpointHandle<M>) {
        let (cmd_tx, cmd_rx) = mpsc::channel(256);
        let (event_tx, events) = mpsc::channel(1024);
        (
            Endpoint { machine, transport, groups, cmd_rx, event_tx },
            EndpointHandle { cmd_tx, events },
        )
    }

    /// Runs the endpoint until the handle is dropped or the transport
    /// fails.
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub async fn run(mut self) -> io::Result<()> {
        let origin = Instant::now();
        let now_fn = |origin: Instant| {
            Time::from_nanos(Instant::now().duration_since(origin).as_nanos() as u64)
        };
        for g in &self.groups {
            self.transport.join(*g)?;
        }
        let mut out = Actions::new();
        self.machine.on_start(now_fn(origin), &mut out);
        self.execute(&mut out).await?;

        loop {
            let deadline = self
                .machine
                .next_deadline()
                .map(|t| origin + Duration::from_nanos(t.nanos()))
                .unwrap_or_else(|| Instant::now() + Duration::from_secs(3600));
            tokio::select! {
                biased;
                cmd = self.cmd_rx.recv() => {
                    let Some(cmd) = cmd else { return Ok(()) }; // handle dropped
                    let now = now_fn(origin);
                    cmd(&mut self.machine, now, &mut out);
                    self.machine.poll(now, &mut out);
                    self.execute(&mut out).await?;
                }
                recv = self.transport.recv() => {
                    let (from, packet) = recv?;
                    self.machine.on_packet(now_fn(origin), from, packet, &mut out);
                    self.execute(&mut out).await?;
                }
                _ = tokio::time::sleep_until(deadline) => {
                    self.machine.poll(now_fn(origin), &mut out);
                    self.execute(&mut out).await?;
                }
            }
        }
    }

    async fn execute(&mut self, out: &mut Actions) -> io::Result<()> {
        for action in out.drain(..) {
            match action {
                Action::Unicast { to, packet } => {
                    self.transport.send_unicast(to, &packet).await?;
                }
                Action::Multicast { scope, packet } => {
                    self.transport.send_multicast(scope, &packet).await?;
                }
                Action::Deliver(d) => {
                    // A slow or absent consumer must not wedge the
                    // protocol; drop events if the channel is full.
                    let _ = self.event_tx.try_send(EndpointEvent::Delivery(d));
                }
                Action::Notice(n) => {
                    let _ = self.event_tx.try_send(EndpointEvent::Notice(n));
                }
                Action::Join(g) => self.transport.join(g)?,
                Action::Leave(g) => self.transport.leave(g)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Hub;
    use bytes::Bytes;
    use lbrm_core::logger::{Logger, LoggerConfig};
    use lbrm_core::receiver::{Receiver, ReceiverConfig};
    use lbrm_core::sender::{Sender, SenderConfig};
    use lbrm_wire::{HostId, Seq, SourceId};

    const GROUP: GroupId = GroupId(1);
    const SRC: SourceId = SourceId(1);
    const SRC_HOST: HostId = HostId(1);
    const LOG_HOST: HostId = HostId(2);
    const RX_HOST: HostId = HostId(3);

    struct Net {
        hub: Hub,
        sender: EndpointHandle<Sender>,
        _logger: EndpointHandle<Logger>,
        receiver: EndpointHandle<Receiver>,
        tasks: Vec<tokio::task::JoinHandle<io::Result<()>>>,
    }

    async fn spawn_net() -> Net {
        let hub = Hub::new();
        let mut tasks = Vec::new();

        let (ep, sender) = Endpoint::new(
            Sender::new(SenderConfig::new(GROUP, SRC, SRC_HOST, LOG_HOST)),
            hub.attach(SRC_HOST),
            vec![],
        );
        tasks.push(tokio::spawn(ep.run()));

        let (ep, logger) = Endpoint::new(
            Logger::new(LoggerConfig::primary(GROUP, SRC, LOG_HOST, SRC_HOST)),
            hub.attach(LOG_HOST),
            vec![GROUP],
        );
        tasks.push(tokio::spawn(ep.run()));

        let (ep, receiver) = Endpoint::new(
            Receiver::new(ReceiverConfig::new(GROUP, SRC, RX_HOST, SRC_HOST, vec![LOG_HOST])),
            hub.attach(RX_HOST),
            vec![GROUP],
        );
        tasks.push(tokio::spawn(ep.run()));

        let net = Net { hub, sender, _logger: logger, receiver, tasks };
        // Wait until the logger and receiver endpoints have joined the
        // group, so the first multicast reaches them.
        while net.hub.group_size(GROUP) < 2 {
            tokio::time::sleep(Duration::from_millis(1)).await;
        }
        net
    }

    async fn publish(net: &Net, payload: &'static str) {
        net.sender
            .call(move |s: &mut Sender, now, out| s.send(now, Bytes::from_static(payload.as_bytes()), out))
            .await
            .unwrap();
    }

    async fn next_delivery(net: &mut Net) -> Option<Delivery> {
        loop {
            match net.receiver.event_timeout(Duration::from_secs(5)).await? {
                EndpointEvent::Delivery(d) => return Some(d),
                EndpointEvent::Notice(_) => continue,
            }
        }
    }

    #[tokio::test]
    async fn publish_and_deliver_over_hub() {
        let mut net = spawn_net().await;
        publish(&net, "hello multicast").await;
        let d = next_delivery(&mut net).await.expect("delivery");
        assert_eq!(d.seq, Seq(1));
        assert_eq!(d.payload.as_ref(), b"hello multicast");
        assert!(!d.recovered);
        for t in &net.tasks {
            t.abort();
        }
    }

    #[tokio::test]
    async fn recovery_through_logger_after_partition() {
        let mut net = spawn_net().await;
        publish(&net, "one").await;
        assert_eq!(next_delivery(&mut net).await.unwrap().seq, Seq(1));

        // Partition the receiver while #2 goes out; the logger still
        // hears it.
        net.hub.set_partitioned(RX_HOST, true);
        publish(&net, "two").await;
        tokio::time::sleep(Duration::from_millis(50)).await;
        net.hub.set_partitioned(RX_HOST, false);

        // #3 reveals the gap; the receiver recovers #2 from the logger.
        publish(&net, "three").await;
        let mut got = Vec::new();
        while got.len() < 2 {
            let d = next_delivery(&mut net).await.expect("delivery");
            got.push((d.seq.raw(), d.recovered));
        }
        got.sort();
        assert_eq!(got[0], (2, true), "{got:?}");
        assert_eq!(got[1], (3, false));
        for t in &net.tasks {
            t.abort();
        }
    }

    #[tokio::test]
    async fn handle_drop_shuts_endpoint_down() {
        let hub = Hub::new();
        let (ep, handle) = Endpoint::new(
            Receiver::new(ReceiverConfig::new(GROUP, SRC, RX_HOST, SRC_HOST, vec![LOG_HOST])),
            hub.attach(RX_HOST),
            vec![GROUP],
        );
        let task = tokio::spawn(ep.run());
        drop(handle);
        let result = tokio::time::timeout(Duration::from_secs(1), task).await;
        assert!(matches!(result, Ok(Ok(Ok(())))), "endpoint must exit cleanly");
    }
}
