//! In-process hub transport.
//!
//! A [`Hub`] is a software multicast fabric inside one process: each
//! endpoint attaches and gets a [`HubTransport`]. Unicast goes straight
//! to the target's queue; multicast fans out to the group members
//! (excluding the sender, like IP multicast with loopback off). No
//! network configuration, no permissions — the reliable way to exercise
//! real endpoints in tests and demos.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lbrm_wire::{GroupId, HostId, Packet, TtlScope};

use crate::Transport;

#[derive(Default)]
struct HubState {
    endpoints: HashMap<HostId, mpsc::Sender<(HostId, Packet)>>,
    groups: HashMap<GroupId, BTreeSet<HostId>>,
    /// Failure injection: partitioned hosts receive nothing.
    partitioned: BTreeSet<HostId>,
}

/// The shared fabric.
#[derive(Clone, Default)]
pub struct Hub {
    state: Arc<Mutex<HubState>>,
}

impl Hub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Hub::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attaches an endpoint with identity `host`.
    ///
    /// # Panics
    ///
    /// If `host` is already attached.
    pub fn attach(&self, host: HostId) -> HubTransport {
        let (tx, rx) = mpsc::channel();
        let mut st = self.lock();
        assert!(
            st.endpoints.insert(host, tx).is_none(),
            "host {host} attached twice"
        );
        HubTransport {
            hub: self.clone(),
            host,
            rx,
        }
    }

    /// Current member count of `group`.
    pub fn group_size(&self, group: GroupId) -> usize {
        self.lock().groups.get(&group).map_or(0, |g| g.len())
    }

    /// Failure injection: while partitioned, `host` receives nothing
    /// (its own sends still go out, like an asymmetric link failure; use
    /// two calls for a full partition).
    pub fn set_partitioned(&self, host: HostId, partitioned: bool) {
        let mut st = self.lock();
        if partitioned {
            st.partitioned.insert(host);
        } else {
            st.partitioned.remove(&host);
        }
    }

    fn deliver(&self, from: HostId, to: HostId, packet: &Packet) {
        let st = self.lock();
        if st.partitioned.contains(&to) {
            return;
        }
        if let Some(tx) = st.endpoints.get(&to) {
            // A closed queue means the endpoint shut down; like UDP, the
            // packet is silently dropped.
            let _ = tx.send((from, packet.clone()));
        }
    }

    fn multicast(&self, from: HostId, packet: &Packet) {
        let members: Vec<HostId> = {
            let st = self.lock();
            st.groups
                .get(&packet.group())
                .map(|g| g.iter().copied().filter(|&m| m != from).collect())
                .unwrap_or_default()
        };
        for m in members {
            self.deliver(from, m, packet);
        }
    }

    /// Delivers a run of packets to one host under a single lock
    /// acquisition — the hub's analogue of a bundled datagram. Packet
    /// order is preserved, so receivers cannot tell batched delivery
    /// from per-packet delivery.
    fn deliver_batch(&self, from: HostId, to: HostId, packets: &[Packet]) {
        let st = self.lock();
        if st.partitioned.contains(&to) {
            return;
        }
        if let Some(tx) = st.endpoints.get(&to) {
            for packet in packets {
                let _ = tx.send((from, packet.clone()));
            }
        }
    }
}

/// One endpoint's connection to a [`Hub`].
pub struct HubTransport {
    hub: Hub,
    host: HostId,
    rx: mpsc::Receiver<(HostId, Packet)>,
}

impl Drop for HubTransport {
    fn drop(&mut self) {
        let mut st = self.hub.lock();
        st.endpoints.remove(&self.host);
        for g in st.groups.values_mut() {
            g.remove(&self.host);
        }
    }
}

impl Transport for HubTransport {
    fn local_host(&self) -> HostId {
        self.host
    }

    fn send_unicast(&mut self, to: HostId, packet: &Packet) -> io::Result<()> {
        self.hub.deliver(self.host, to, packet);
        Ok(())
    }

    fn send_multicast(&mut self, _scope: TtlScope, packet: &Packet) -> io::Result<()> {
        // The hub is one site; every scope reaches everyone.
        self.hub.multicast(self.host, packet);
        Ok(())
    }

    fn send_unicast_bundle(&mut self, to: HostId, packets: &[Packet]) -> io::Result<()> {
        self.hub.deliver_batch(self.host, to, packets);
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<(HostId, Packet)>> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Ok(Some(v)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "hub closed"))
            }
        }
    }

    fn join(&mut self, group: GroupId) -> io::Result<()> {
        self.hub
            .lock()
            .groups
            .entry(group)
            .or_default()
            .insert(self.host);
        Ok(())
    }

    fn leave(&mut self, group: GroupId) -> io::Result<()> {
        if let Some(g) = self.hub.lock().groups.get_mut(&group) {
            g.remove(&self.host);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lbrm_wire::{EpochId, Seq, SourceId};

    const WAIT: Duration = Duration::from_secs(1);

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn unicast_delivery() {
        let hub = Hub::new();
        let mut a = hub.attach(HostId(1));
        let mut b = hub.attach(HostId(2));
        a.send_unicast(HostId(2), &data(1)).unwrap();
        let (from, p) = b.recv_timeout(WAIT).unwrap().unwrap();
        assert_eq!(from, HostId(1));
        assert_eq!(p, data(1));
    }

    #[test]
    fn multicast_fans_out_excluding_sender() {
        let hub = Hub::new();
        let mut a = hub.attach(HostId(1));
        let mut b = hub.attach(HostId(2));
        let mut c = hub.attach(HostId(3));
        a.join(GroupId(1)).unwrap();
        b.join(GroupId(1)).unwrap();
        c.join(GroupId(1)).unwrap();
        assert_eq!(hub.group_size(GroupId(1)), 3);
        a.send_multicast(TtlScope::Global, &data(7)).unwrap();
        assert_eq!(b.recv_timeout(WAIT).unwrap().unwrap().1, data(7));
        assert_eq!(c.recv_timeout(WAIT).unwrap().unwrap().1, data(7));
        // The sender itself receives nothing (checked by b/c being the
        // only queued packets).
        a.send_unicast(HostId(1), &data(8)).unwrap();
        let (_, p) = a.recv_timeout(WAIT).unwrap().unwrap();
        assert_eq!(p, data(8));
    }

    #[test]
    fn bundled_unicast_preserves_order() {
        let hub = Hub::new();
        let mut a = hub.attach(HostId(1));
        let mut b = hub.attach(HostId(2));
        let run: Vec<Packet> = (1..=4).map(data).collect();
        a.send_unicast_bundle(HostId(2), &run).unwrap();
        for want in &run {
            let (from, p) = b.recv_timeout(WAIT).unwrap().unwrap();
            assert_eq!(from, HostId(1));
            assert_eq!(&p, want);
        }
    }

    #[test]
    fn leave_stops_multicast() {
        let hub = Hub::new();
        let mut a = hub.attach(HostId(1));
        let mut b = hub.attach(HostId(2));
        b.join(GroupId(1)).unwrap();
        b.leave(GroupId(1)).unwrap();
        a.send_multicast(TtlScope::Global, &data(1)).unwrap();
        a.send_unicast(HostId(2), &data(2)).unwrap();
        // Only the unicast arrives.
        let (_, p) = b.recv_timeout(WAIT).unwrap().unwrap();
        assert_eq!(p, data(2));
    }

    #[test]
    fn detach_cleans_up() {
        let hub = Hub::new();
        let a = hub.attach(HostId(1));
        {
            let mut b = hub.attach(HostId(2));
            b.join(GroupId(1)).unwrap();
            assert_eq!(hub.group_size(GroupId(1)), 1);
        }
        assert_eq!(hub.group_size(GroupId(1)), 0);
        drop(a);
        // Host ids can be reused after detach.
        let _a2 = hub.attach(HostId(1));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let hub = Hub::new();
        let _a = hub.attach(HostId(1));
        let _b = hub.attach(HostId(1));
    }
}
