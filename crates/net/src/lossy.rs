//! A deterministic lossy wrapper around any [`Transport`].
//!
//! Live-doctor scenarios need real packet loss over real sockets to
//! exercise NACK recovery, but OS loopback never drops. This wrapper
//! discards a seeded fraction of *received* [`Packet::Data`] packets —
//! only fresh multicast data, never heartbeats, NACKs, or `Retrans`
//! repairs — so every induced loss is recoverable through the logger
//! and the run stays reproducible for a given seed.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lbrm_wire::{GroupId, HostId, Packet, TtlScope};

use crate::Transport;

/// Drops received data packets at a fixed seeded rate.
#[derive(Debug)]
pub struct LossyTransport<T: Transport> {
    inner: T,
    /// Loss rate as a fraction of 2^53, compared against the top 53
    /// bits of a splitmix64 draw — exact for every representable rate.
    rate_p53: u64,
    state: u64,
    /// Shared so a harness can watch induced loss after the transport
    /// has moved into its endpoint thread.
    dropped: Arc<AtomicU64>,
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner`, dropping received data packets with probability
    /// `rate` (clamped to `[0, 1]`), deterministically from `seed`.
    pub fn new(inner: T, rate: f64, seed: u64) -> Self {
        let rate_p53 = (rate.clamp(0.0, 1.0) * (1u64 << 53) as f64) as u64;
        LossyTransport {
            inner,
            rate_p53,
            state: seed,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Data packets discarded so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A handle on the drop counter that outlives the transport's move
    /// into an endpoint thread.
    pub fn shared_dropped(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.dropped)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn roll_drop(&mut self) -> bool {
        // splitmix64: statistically solid, dependency-free, and stable
        // across platforms — the same seed replays the same loss trace.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) < self.rate_p53
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn local_host(&self) -> HostId {
        self.inner.local_host()
    }

    fn send_unicast(&mut self, to: HostId, packet: &Packet) -> io::Result<()> {
        self.inner.send_unicast(to, packet)
    }

    fn send_multicast(&mut self, scope: TtlScope, packet: &Packet) -> io::Result<()> {
        self.inner.send_multicast(scope, packet)
    }

    // Loss is injected on *receive*, so bundle and fanout sends forward
    // straight to the inner transport — without these overrides the
    // trait defaults would silently bypass the inner transport's
    // bundling fast path.
    fn send_unicast_bundle(&mut self, to: HostId, packets: &[Packet]) -> io::Result<()> {
        self.inner.send_unicast_bundle(to, packets)
    }

    fn send_multicast_bundle(&mut self, scope: TtlScope, packets: &[Packet]) -> io::Result<()> {
        self.inner.send_multicast_bundle(scope, packets)
    }

    fn send_unicast_fanout(&mut self, dests: &[HostId], packet: &Packet) -> io::Result<()> {
        self.inner.send_unicast_fanout(dests, packet)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<(HostId, Packet)>> {
        // Honor the caller's deadline across discarded packets: a
        // dropped datagram must not silently extend the wait.
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let Some((from, packet)) = self.inner.recv_timeout(left)? else {
                return Ok(None);
            };
            if matches!(packet, Packet::Data { .. }) && self.roll_drop() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                continue;
            }
            return Ok(Some((from, packet)));
        }
    }

    fn join(&mut self, group: GroupId) -> io::Result<()> {
        self.inner.join(group)
    }

    fn leave(&mut self, group: GroupId) -> io::Result<()> {
        self.inner.leave(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Hub;
    use bytes::Bytes;
    use lbrm_wire::{EpochId, Seq, SourceId};

    fn data(seq: u32) -> Packet {
        Packet::Data {
            group: GroupId(1),
            source: SourceId(1),
            seq: Seq(seq),
            epoch: EpochId(0),
            payload: Bytes::from_static(b"x"),
        }
    }

    fn nack(seq: u32) -> Packet {
        Packet::Nack {
            group: GroupId(1),
            source: SourceId(1),
            requester: HostId(9),
            ranges: vec![lbrm_wire::SeqRange::single(Seq(seq))],
        }
    }

    /// rate=1 drops every data packet (and counts them); control
    /// packets always pass.
    #[test]
    fn drops_data_but_never_control_packets() {
        let hub = Hub::new();
        let mut tx = hub.attach(HostId(1));
        let mut rx = LossyTransport::new(hub.attach(HostId(2)), 1.0, 7);

        tx.send_unicast(HostId(2), &data(1)).unwrap();
        tx.send_unicast(HostId(2), &nack(1)).unwrap();
        // The data packet is swallowed; the NACK behind it arrives
        // within the same wait.
        let got = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(matches!(got, Some((_, Packet::Nack { .. }))), "{got:?}");
        assert_eq!(rx.dropped(), 1);
    }

    /// rate=0 is transparent.
    #[test]
    fn zero_rate_passes_everything() {
        let hub = Hub::new();
        let mut tx = hub.attach(HostId(1));
        let mut rx = LossyTransport::new(hub.attach(HostId(2)), 0.0, 7);
        tx.send_unicast(HostId(2), &data(5)).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(matches!(got, Some((_, Packet::Data { .. }))), "{got:?}");
        assert_eq!(rx.dropped(), 0);
    }

    /// The same seed replays the same drop decisions.
    #[test]
    fn same_seed_same_decisions() {
        let decisions = |seed: u64| {
            let hub = Hub::new();
            let mut t = LossyTransport::new(hub.attach(HostId(2)), 0.5, seed);
            (0..64).map(|_| t.roll_drop()).collect::<Vec<_>>()
        };
        assert_eq!(decisions(42), decisions(42));
        assert_ne!(decisions(42), decisions(43));
    }
}
