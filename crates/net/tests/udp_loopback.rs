//! Real-UDP integration test over the loopback interface.
//!
//! Runs a sender, a primary logger, and a receiver as three endpoints on
//! `127.0.0.1` with genuine multicast sockets. Environments that forbid
//! multicast (some containers) make the setup fail; the test then skips
//! rather than fails, printing why.

use std::net::Ipv4Addr;
use std::time::Duration;

use bytes::Bytes;
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::receiver::{Receiver, ReceiverConfig};
use lbrm_core::sender::{Sender, SenderConfig};
use lbrm_net::{Endpoint, EndpointEvent, GroupMap, Transport, UdpTransport};
use lbrm_wire::{GroupId, Seq, SourceId};

const GROUP: GroupId = GroupId(7);
const SRC: SourceId = SourceId(1);

fn try_bind(port: u16) -> Option<UdpTransport> {
    let map = GroupMap::new(port);
    match UdpTransport::bind(Ipv4Addr::LOCALHOST, map) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("skipping UDP loopback test: bind failed: {e}");
            None
        }
    }
}

#[test]
fn udp_multicast_end_to_end() {
    let port = 49_431;
    let Some(tx_t) = try_bind(port) else { return };
    let Some(mut log_t) = try_bind(port) else {
        return;
    };
    let Some(mut rx_t) = try_bind(port) else {
        return;
    };

    // Probe that multicast join actually works here.
    if let Err(e) = log_t.join(GROUP) {
        eprintln!("skipping UDP loopback test: multicast join failed: {e}");
        return;
    }
    if let Err(e) = rx_t.join(GROUP) {
        eprintln!("skipping UDP loopback test: multicast join failed: {e}");
        return;
    }

    let src_host = tx_t.local_host();
    let log_host = log_t.local_host();

    let (ep, sender) = Endpoint::new(
        Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
        tx_t,
        vec![],
    );
    ep.spawn();

    let (ep, _logger) = Endpoint::new(
        Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
        log_t,
        vec![],
    );
    ep.spawn();

    let rx_host = rx_t.local_host();
    let (ep, mut receiver) = Endpoint::new(
        Receiver::new(ReceiverConfig::new(
            GROUP,
            SRC,
            rx_host,
            src_host,
            vec![log_host],
        )),
        rx_t,
        vec![],
    );
    ep.spawn();

    // Give the reader threads a moment, then publish.
    std::thread::sleep(Duration::from_millis(100));
    sender
        .call(|s: &mut Sender, now, out| s.send(now, Bytes::from_static(b"over real udp"), out))
        .unwrap();

    // The receiver should deliver — via the original multicast or, if
    // the first datagram raced the subscription, via logger recovery.
    let mut delivered = None;
    for _ in 0..64 {
        match receiver.event_timeout(Duration::from_secs(5)) {
            Some(EndpointEvent::Delivery(d)) => {
                delivered = Some(d);
                break;
            }
            Some(EndpointEvent::Notice(_)) => continue,
            None => break,
        }
    }
    let d = match delivered {
        Some(d) => d,
        None => {
            eprintln!(
                "skipping UDP loopback assertion: no delivery (multicast routing unavailable)"
            );
            return;
        }
    };
    assert_eq!(d.seq, Seq(1));
    assert_eq!(d.payload.as_ref(), b"over real udp");
}

/// Undecodable datagrams hitting a live transport land in its receive
/// counters instead of vanishing, and the endpoint keeps delivering
/// valid traffic afterwards.
#[test]
fn garbage_datagram_is_counted_not_delivered() {
    use std::net::UdpSocket;

    let Some(mut t) = try_bind(49_433) else {
        return;
    };
    let raw = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let dst = t.local_addr();
    raw.send_to(&[0xFF; 64], dst).unwrap();

    // The reader thread drops the garbage without delivering anything.
    assert!(t
        .recv_timeout(Duration::from_millis(300))
        .unwrap()
        .is_none());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while t.recv_counters().decode_errors() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(t.recv_counters().decode_errors(), 1);
    assert_eq!(t.recv_counters().truncated(), 0);

    // Valid traffic still flows through the same reader loop.
    let Some(mut peer) = try_bind(49_433) else {
        return;
    };
    let me = t.local_host();
    peer.send_unicast(
        me,
        &lbrm_wire::Packet::Heartbeat {
            group: GROUP,
            source: SRC,
            seq: Seq(0),
            epoch: lbrm_wire::EpochId(0),
            hb_index: 1,
            payload: Bytes::new(),
        },
    )
    .unwrap();
    let got = t.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(got.is_some(), "valid packet after garbage must deliver");
}
