//! Offline, API-compatible subset of the [`rand`] 0.9 crate.
//!
//! Build environments for this repository cannot reach crates.io, so the
//! small slice of `rand` that LBRM uses is vendored: the [`Rng`] and
//! [`SeedableRng`] traits with `random`, `random_bool`, and
//! `random_range`, plus [`rngs::SmallRng`], a xoshiro256++ generator
//! seeded through SplitMix64 exactly like the real `SmallRng` on 64-bit
//! targets. Sequences are deterministic per seed, which is what the
//! simulator relies on; they are **not** bit-identical to upstream
//! `rand`, and nothing here is cryptographically secure.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A deterministic seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for `SmallRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let b = v.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }

    /// Constructs the generator from operating-system entropy.
    fn from_os_rng() -> Self {
        // No getrandom in the offline shim: mix the clock and ASLR-ish
        // addresses. Fine for jitter; not for cryptography.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let addr = {
            let probe = 0u8;
            std::ptr::addr_of!(probe) as u64
        };
        Self::seed_from_u64(t ^ addr.rotate_left(32) ^ std::process::id() as u64)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Samples a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64);

/// Unbiased uniform sample in `[0, span)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling interface, auto-implemented for all generators.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p={p} not in [0,1]");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn random_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.random_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.random_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
