//! Offline, API-compatible subset of the [`bytes`] crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the small slice of the `bytes` API that LBRM actually uses is
//! vendored here: [`Bytes`] (cheaply clonable immutable buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits with big-endian integer accessors.
//!
//! Semantics mirror the real crate for the covered surface: `Bytes`
//! clones are O(1) reference-count bumps, `Buf::advance` consumes from
//! the front, and `BytesMut::freeze` converts without copying.
//!
//! [`bytes`]: https://docs.rs/bytes

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Creates `Bytes` from a static slice without copying on clone.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies `src` into a new `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            start: 0,
            end: src.len(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice of this buffer as a new `Bytes` (O(1)).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.as_slice().to_vec()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer used to build packets before freezing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Clears the buffer, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", &self.inner)
    }
}

/// Read cursor over a byte source; integer accessors are big-endian.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;
    /// The current contiguous unread region.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte sink; integer writers are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_i64(-42);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64(), -42);
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn bytes_advance_consumes_front() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        a.advance(2);
        assert_eq!(&a[..], &[3, 4]);
        assert_eq!(a.remaining(), 2);
    }

    #[test]
    fn slice_shares_storage() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).len(), 2);
    }

    #[test]
    fn bytesmut_index_patching() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32(0);
        b[0..2].copy_from_slice(&0xBEEFu16.to_be_bytes());
        assert_eq!(&b[..2], &0xBEEFu16.to_be_bytes());
    }
}
