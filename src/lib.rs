//! LBRM — Log-Based Receiver-Reliable Multicast.
//!
//! Facade crate for the LBRM workspace, a reproduction of *"Log-Based
//! Receiver-Reliable Multicast for Distributed Interactive Simulation"*
//! (Holbrook, Singhal & Cheriton, SIGCOMM 1995):
//!
//! * [`wire`] — packet formats and codecs ([`lbrm_wire`]).
//! * [`core`] — the protocol state machines ([`lbrm_core`]).
//! * [`sim`] — the deterministic network simulator ([`lbrm_sim`]).
//! * [`net`] — tokio transports for real UDP multicast ([`lbrm_net`]).
//! * [`apps`] — the paper's §4 applications ([`lbrm_apps`]).
//! * [`harness`] — glue that runs the sans-IO machines inside the
//!   simulator, plus ready-made experiment scenarios (the 50-site DIS
//!   topology, SRM comparison sessions, failure injection).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete simulated session: one
//! terrain-entity source, a primary logger, two sites of receivers with
//! secondary loggers, loss on a tail circuit, and sub-RTT recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lbrm_apps as apps;
pub use lbrm_core as core;
pub use lbrm_net as net;
pub use lbrm_sim as sim;
pub use lbrm_wire as wire;

pub mod harness;
