//! The [`MachineActor`] adapter: any [`lbrm_core::Machine`] becomes an
//! [`lbrm_sim::Actor`].
//!
//! The adapter translates:
//!
//! * simulator packets / timers → machine `on_packet` / `poll`,
//! * machine [`Action`]s → simulator sends, joins, and local logs,
//! * [`Machine::next_deadline`] → a single simulator timer (re-armed
//!   after every event; spurious fires are harmless by the machine
//!   contract).
//!
//! Deliveries and notices are accumulated with their virtual timestamps
//! so experiments can mine them after the run. Application behaviour
//! (e.g. "publish a terrain update at t = 10 s") is injected with
//! [`MachineActor::schedule`].

use lbrm_core::machine::{Action, Actions, Delivery, Machine, Notice};
use lbrm_core::time::Time;
use lbrm_sim::time::SimTime;
use lbrm_sim::world::{Actor, Ctx};
use lbrm_wire::{GroupId, HostId, Packet};

/// A scheduled application call against the wrapped machine. `Send`
/// because the sharded simulator may run the actor on a worker thread.
type AppCall<M> = Box<dyn FnMut(&mut M, Time, &mut Actions) + Send>;

/// Converts simulator time to protocol time (both are nanoseconds from
/// the run origin).
pub fn to_core(t: SimTime) -> Time {
    Time::from_nanos(t.nanos())
}

/// Converts protocol time to simulator time.
pub fn to_sim(t: Time) -> SimTime {
    SimTime::from_nanos(t.nanos())
}

/// Schedules an application call against the machine on `host` at `at`,
/// whether or not the world has started (double arming is harmless: the
/// call slot is consumed exactly once).
pub fn call_at<M: Machine + Send + 'static>(
    world: &mut lbrm_sim::world::World,
    host: HostId,
    at: SimTime,
    call: impl FnMut(&mut M, Time, &mut Actions) + Send + 'static,
) {
    let token = world.actor_mut::<MachineActor<M>>(host).schedule(at, call);
    world.schedule_timer(host, at, token);
}

const POLL_TOKEN: u64 = 0;

/// Wraps a protocol machine as a simulator actor.
pub struct MachineActor<M: Machine> {
    machine: M,
    /// Groups to join on start.
    joins: Vec<GroupId>,
    /// Scheduled application calls, by firing time. Token = index + 1.
    script: Vec<(SimTime, Option<AppCall<M>>)>,
    /// Earliest armed poll timer, to avoid flooding the queue.
    armed: Option<Time>,
    /// Deliveries observed, with arrival time.
    pub deliveries: Vec<(SimTime, Delivery)>,
    /// Notices observed, with emission time.
    pub notices: Vec<(SimTime, Notice)>,
    /// Unicast transmissions by this machine, per packet kind.
    pub sent_unicast: std::collections::HashMap<&'static str, u64>,
    /// Multicast transmissions by this machine, per packet kind (one
    /// count per send, regardless of fan-out).
    pub sent_multicast: std::collections::HashMap<&'static str, u64>,
}

impl<M: Machine + 'static> MachineActor<M> {
    /// Wraps `machine`, joining `groups` when the simulation starts.
    pub fn new(machine: M, groups: Vec<GroupId>) -> Self {
        MachineActor {
            machine,
            joins: groups,
            script: Vec::new(),
            armed: None,
            deliveries: Vec::new(),
            notices: Vec::new(),
            sent_unicast: std::collections::HashMap::new(),
            sent_multicast: std::collections::HashMap::new(),
        }
    }

    /// Schedules an application call at virtual time `at`; returns the
    /// timer token backing it. Before the world starts this is all you
    /// need (the actor arms its script at `on_start`); once the world is
    /// running, also arm the token via
    /// [`World::schedule_timer`](lbrm_sim::world::World::schedule_timer)
    /// — or use [`call_at`], which does both.
    pub fn schedule(
        &mut self,
        at: SimTime,
        call: impl FnMut(&mut M, Time, &mut Actions) + Send + 'static,
    ) -> u64 {
        self.script.push((at, Some(Box::new(call))));
        self.script.len() as u64
    }

    /// Installs a protocol-event tracer on the wrapped machine (a no-op
    /// for machines that don't emit [`lbrm_core::trace::ProtocolEvent`]s).
    pub fn set_tracer(&mut self, tracer: lbrm_core::trace::Tracer) {
        self.machine.set_tracer(tracer);
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the wrapped machine.
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    fn execute(&mut self, ctx: &mut Ctx<'_>, actions: Actions) {
        for action in actions {
            match action {
                Action::Unicast { to, packet } => {
                    *self.sent_unicast.entry(packet.kind()).or_insert(0) += 1;
                    ctx.send_unicast(to, packet);
                }
                Action::Multicast { scope, packet } => {
                    *self.sent_multicast.entry(packet.kind()).or_insert(0) += 1;
                    ctx.send_multicast(scope, packet);
                }
                Action::Deliver(d) => self.deliveries.push((ctx.now(), d)),
                Action::Notice(n) => self.notices.push((ctx.now(), n)),
                Action::Join(g) => ctx.join(g),
                Action::Leave(g) => ctx.leave(g),
            }
        }
        self.rearm(ctx);
    }

    fn rearm(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(d) = self.machine.next_deadline() {
            if self.armed.is_none_or(|a| d < a || to_sim(a) <= ctx.now()) {
                self.armed = Some(d);
                ctx.set_timer_at(to_sim(d), POLL_TOKEN);
            }
        }
    }
}

impl<M: Machine + Send + 'static> Actor for MachineActor<M> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for g in self.joins.clone() {
            ctx.join(g);
        }
        for (i, (at, _)) in self.script.iter().enumerate() {
            ctx.set_timer_at(*at, i as u64 + 1);
        }
        let mut out = Actions::new();
        self.machine.on_start(to_core(ctx.now()), &mut out);
        self.execute(ctx, out);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: HostId, packet: Packet) {
        let mut out = Actions::new();
        self.machine
            .on_packet(to_core(ctx.now()), from, packet, &mut out);
        self.execute(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = to_core(ctx.now());
        let mut out = Actions::new();
        if token == POLL_TOKEN {
            if self.armed.is_some_and(|a| a <= now) {
                self.armed = None;
            }
            self.machine.poll(now, &mut out);
        } else {
            let idx = (token - 1) as usize;
            if let Some((_, slot)) = self.script.get_mut(idx) {
                if let Some(mut call) = slot.take() {
                    call(&mut self.machine, now, &mut out);
                }
            }
            // Application calls can create work (e.g. heartbeat
            // scheduling), and the machine may also have due poll work.
            self.machine.poll(now, &mut out);
        }
        self.execute(ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lbrm_core::logger::{Logger, LoggerConfig};
    use lbrm_core::receiver::{Receiver, ReceiverConfig};
    use lbrm_core::sender::{Sender, SenderConfig};
    use lbrm_sim::topology::{SiteParams, TopologyBuilder};
    use lbrm_sim::world::World;
    use lbrm_wire::{GroupId, SourceId};

    const GROUP: GroupId = GroupId(1);
    const SRC: SourceId = SourceId(1);

    /// Lossless end-to-end smoke test: sender → primary logger →
    /// receiver, three data packets plus heartbeats, everything
    /// delivered, buffer fully released.
    #[test]
    fn end_to_end_lossless() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        let s1 = b.site(SiteParams::default());
        let src_host = b.host(s0);
        let log_host = b.host(s0);
        let rx_host = b.host(s1);
        let mut world = World::new(b.build(), 42);

        let mut sender = MachineActor::new(
            Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
            vec![],
        );
        for i in 0..3u64 {
            sender.schedule(
                SimTime::from_secs(1 + i),
                move |s: &mut Sender, now, out| {
                    s.send(now, Bytes::from(format!("update-{i}")), out);
                },
            );
        }
        world.add_actor(src_host, sender);
        world.add_actor(
            log_host,
            MachineActor::new(
                Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
                vec![GROUP],
            ),
        );
        world.add_actor(
            rx_host,
            MachineActor::new(
                Receiver::new(ReceiverConfig::new(
                    GROUP,
                    SRC,
                    rx_host,
                    src_host,
                    vec![log_host],
                )),
                vec![GROUP],
            ),
        );

        world.run_until(SimTime::from_secs(10));

        let rx = world.actor::<MachineActor<Receiver>>(rx_host);
        let seqs: Vec<u32> = rx.deliveries.iter().map(|(_, d)| d.seq.raw()).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(rx.deliveries.iter().all(|(_, d)| !d.recovered));

        let tx = world.actor::<MachineActor<Sender>>(src_host);
        assert_eq!(
            tx.machine().buffered(),
            0,
            "log acks must release the buffer"
        );

        let log = world.actor::<MachineActor<Logger>>(log_host);
        assert_eq!(log.machine().log_len(), 3);
    }

    /// A receiver that loses a packet (site outage) recovers it from the
    /// logger within a local round trip.
    #[test]
    fn end_to_end_recovery_after_site_outage() {
        let mut b = TopologyBuilder::new();
        let s0 = b.site(SiteParams::default());
        // Receiver site suffers an inbound outage covering the second
        // data packet.
        let s1 = b.site(SiteParams {
            tail_in_loss: lbrm_sim::LossModel::outage(
                SimTime::from_millis(1900),
                std::time::Duration::from_millis(200),
            ),
            ..SiteParams::default()
        });
        let src_host = b.host(s0);
        let log_host = b.host(s0);
        let rx_host = b.host(s1);
        let mut world = World::new(b.build(), 7);

        let mut sender = MachineActor::new(
            Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
            vec![],
        );
        for i in 0..3u64 {
            sender.schedule(
                SimTime::from_secs(1 + i),
                move |s: &mut Sender, now, out| {
                    s.send(now, Bytes::from(format!("update-{i}")), out);
                },
            );
        }
        world.add_actor(src_host, sender);
        world.add_actor(
            log_host,
            MachineActor::new(
                Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
                vec![GROUP],
            ),
        );
        world.add_actor(
            rx_host,
            MachineActor::new(
                Receiver::new(ReceiverConfig::new(
                    GROUP,
                    SRC,
                    rx_host,
                    src_host,
                    vec![log_host],
                )),
                vec![GROUP],
            ),
        );

        world.run_until(SimTime::from_secs(10));

        let rx = world.actor::<MachineActor<Receiver>>(rx_host);
        let mut seqs: Vec<u32> = rx.deliveries.iter().map(|(_, d)| d.seq.raw()).collect();
        seqs.sort();
        assert_eq!(seqs, vec![1, 2, 3], "all packets delivered, one recovered");
        assert_eq!(rx.machine().stats().recovered, 1);
        // Recovery notice carries a sane latency (gap detected at the
        // next data packet, then NACK → logger → retransmission).
        let recovered = rx
            .notices
            .iter()
            .find_map(|(_, n)| match n {
                Notice::Recovered { after, .. } => Some(*after),
                _ => None,
            })
            .expect("recovery notice");
        assert!(
            recovered < std::time::Duration::from_millis(500),
            "{recovered:?}"
        );
    }
}
