//! Simulation harness: runs the sans-IO protocol machines inside the
//! deterministic simulator and provides ready-made experiment scenarios.

pub mod adapter;
pub mod scenario;

pub use adapter::{call_at, MachineActor};
pub use scenario::{DisScenario, DisScenarioConfig, SrmScenario, SrmScenarioConfig};
