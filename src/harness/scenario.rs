//! Ready-made experiment scenarios.
//!
//! [`DisScenario`] builds the paper's §2.2.2 evaluation world: a source
//! site hosting the sender, primary logger and its replicas, plus N
//! receiver sites behind tail circuits, each with a secondary logging
//! server and M receivers (50 × 20 = 1,000 subscribers in the paper).
//! [`SrmScenario`] builds the same topology populated with *wb*-style
//! SRM members for the §6 comparison.
//!
//! Both scenarios attach a per-role [`MetricsRegistry`] to every machine
//! they build (sender / primary+replicas / secondaries+regionals /
//! receivers, plus one fed by the simulated network itself), so
//! experiments read protocol counters and latency histograms straight
//! from the trace layer instead of mining notices by hand.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use lbrm_core::baseline::srm::{SrmConfig, SrmMember};
use lbrm_core::heartbeat::HeartbeatConfig;
use lbrm_core::logger::{Logger, LoggerConfig};
use lbrm_core::logstore::{Retention, StoreBackend};
use lbrm_core::machine::Notice;
use lbrm_core::receiver::{Receiver, ReceiverConfig, ReliabilityMode};
use lbrm_core::sender::{HeartbeatScheme, Sender, SenderConfig};
use lbrm_core::statack::StatAckConfig;
use lbrm_core::trace::{FanoutSink, MetricsRegistry, TraceSink, Tracer};
use lbrm_sim::loss::LossModel;
use lbrm_sim::queue::QueueBackend;
use lbrm_sim::time::SimTime;
use lbrm_sim::topology::{SiteParams, TopologyBuilder};
use lbrm_sim::world::World;
use lbrm_wire::{GroupId, HostId, SiteId, SourceId};

use super::adapter::MachineActor;

/// Configuration for [`DisScenario`].
#[derive(Clone)]
pub struct DisScenarioConfig {
    /// Number of receiver sites (the paper's evaluation uses 50).
    pub sites: usize,
    /// Receivers per site (the paper uses 20).
    pub receivers_per_site: usize,
    /// Deploy a secondary logger at each site (distributed logging); when
    /// `false`, receivers recover directly from the primary (the Figure
    /// 7a centralized baseline).
    pub secondary_loggers: bool,
    /// §7 multi-level hierarchy: group receiver sites into regions of
    /// this many sites, each with a *regional* logging server (hosted at
    /// the region's first site) between the site secondaries and the
    /// primary. `None` = the paper's two-level hierarchy.
    pub regional_fanout: Option<usize>,
    /// Primary-log replicas at the source site.
    pub replicas: usize,
    /// Statistical acknowledgement for the sender.
    pub statack: Option<StatAckConfig>,
    /// Heartbeat parameters.
    pub heartbeat: HeartbeatConfig,
    /// Variable (LBRM) or fixed (baseline) heartbeats.
    pub scheme: HeartbeatScheme,
    /// Receiver recovery policy.
    pub mode: ReliabilityMode,
    /// Receivers' reorder-tolerance delay before the first NACK.
    pub receiver_nack_delay: Duration,
    /// Parameters for receiver sites.
    pub site_params: SiteParams,
    /// Optional per-site override (receives the site index, returns its
    /// parameters); when set it takes precedence over `site_params`.
    pub site_params_for: Option<std::sync::Arc<dyn Fn(usize) -> SiteParams>>,
    /// Parameters for the source site.
    pub source_site_params: SiteParams,
    /// Backbone loss.
    pub wan_loss: LossModel,
    /// Log retention at all loggers.
    pub retention: Retention,
    /// World seed.
    pub seed: u64,
    /// Event-queue backend for the world: `None` picks the default
    /// (timer wheel, overridable via `LBRM_SIM_QUEUE`); `Some` pins one
    /// — the wheel-vs-heap differential tests use this.
    pub queue_backend: Option<QueueBackend>,
    /// Simulator shard count: `None` picks the default (1, overridable
    /// via `LBRM_SIM_SHARDS`); `Some` pins one — results are
    /// byte-identical either way, only wall-clock changes.
    pub shards: Option<usize>,
    /// Log-store backend for every logger: `None` picks the default
    /// (segmented slab, overridable via `LBRM_LOG_STORE`); `Some` pins
    /// one — the slab-vs-btree differential tests use this.
    pub log_store: Option<StoreBackend>,
}

impl Default for DisScenarioConfig {
    fn default() -> Self {
        DisScenarioConfig {
            sites: 50,
            receivers_per_site: 20,
            secondary_loggers: true,
            regional_fanout: None,
            replicas: 0,
            statack: None,
            heartbeat: HeartbeatConfig::default(),
            scheme: HeartbeatScheme::Variable,
            mode: ReliabilityMode::RecoverAll,
            receiver_nack_delay: Duration::from_millis(30),
            // Paper's RTT picture: local logger a few ms away, primary
            // ~80 ms RTT away.
            site_params: SiteParams::distant(),
            site_params_for: None,
            source_site_params: SiteParams::distant(),
            wan_loss: LossModel::None,
            retention: Retention::All,
            seed: 1995,
            queue_backend: None,
            shards: None,
            log_store: None,
        }
    }
}

/// A built DIS evaluation world.
pub struct DisScenario {
    /// The simulation.
    pub world: World,
    /// The multicast group.
    pub group: GroupId,
    /// The data source id.
    pub source: SourceId,
    /// The sender's host.
    pub src_host: HostId,
    /// The primary logging server's host.
    pub primary: HostId,
    /// Replica hosts.
    pub replicas: Vec<HostId>,
    /// Receiver sites.
    pub sites: Vec<SiteId>,
    /// Per-site secondary logger (empty when centralized).
    pub secondaries: Vec<HostId>,
    /// Regional loggers (empty for the two-level hierarchy).
    pub regionals: Vec<HostId>,
    /// Per-site receivers.
    pub receivers: Vec<Vec<HostId>>,
    /// Trace metrics from the sender machine.
    pub sender_metrics: Arc<MetricsRegistry>,
    /// Trace metrics from the primary logger and its replicas.
    pub primary_metrics: Arc<MetricsRegistry>,
    /// Trace metrics from site secondaries and regional loggers.
    pub secondary_metrics: Arc<MetricsRegistry>,
    /// Trace metrics from all receivers (recovery-latency histogram).
    pub receiver_metrics: Arc<MetricsRegistry>,
    /// Trace metrics from the simulated network (`net_*` counters).
    pub net_metrics: Arc<MetricsRegistry>,
}

impl DisScenario {
    /// The group id used by every scenario.
    pub const GROUP: GroupId = GroupId(1);
    /// The source id used by every scenario.
    pub const SOURCE: SourceId = SourceId(1);

    /// Builds the world.
    pub fn build(config: DisScenarioConfig) -> Self {
        Self::build_with_sink(config, None)
    }

    /// Builds the world with an extra forensic sink fanned in next to
    /// every role registry (machines *and* the simulated network), so a
    /// [`lbrm_core::trace::CollectorSink`] or
    /// [`lbrm_core::trace::JsonLinesSink`] sees the complete host-tagged
    /// event stream for causal analysis.
    pub fn build_with_sink(
        config: DisScenarioConfig,
        forensics: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        let tap = |reg: Arc<MetricsRegistry>| -> Arc<dyn TraceSink> {
            match &forensics {
                Some(f) => Arc::new(FanoutSink::new(vec![reg as Arc<dyn TraceSink>, f.clone()])),
                None => reg,
            }
        };
        let mut b = TopologyBuilder::new();
        let source_site = b.site(config.source_site_params.clone());
        let src_host = b.host(source_site);
        let primary = b.host(source_site);
        let replicas: Vec<HostId> = (0..config.replicas).map(|_| b.host(source_site)).collect();

        let mut sites = Vec::new();
        let mut secondaries = Vec::new();
        let mut receivers = Vec::new();
        let mut site_hosts = Vec::new();
        let mut regional_hosts: Vec<HostId> = Vec::new();
        for i in 0..config.sites {
            let mut params = match &config.site_params_for {
                Some(f) => f(i),
                None => config.site_params.clone(),
            };
            if let Some(fanout) = config.regional_fanout {
                params.region = (i / fanout.max(1)) as u32 + 1;
            }
            let site = b.site(params);
            sites.push(site);
            // A regional logger lives at the first site of each region.
            if let Some(fanout) = config.regional_fanout {
                if i % fanout.max(1) == 0 && config.secondary_loggers {
                    regional_hosts.push(b.host(site));
                }
            }
            let sec = if config.secondary_loggers {
                Some(b.host(site))
            } else {
                None
            };
            let rxs = b.hosts(site, config.receivers_per_site);
            site_hosts.push((sec, rxs));
        }
        b.wan_loss(config.wan_loss.clone());
        let backend = config.queue_backend.unwrap_or_else(QueueBackend::from_env);
        let mut world = match config.shards {
            Some(n) => World::with_options(b.build(), config.seed, backend, n),
            None => World::with_backend(b.build(), config.seed, backend),
        };
        // One metrics registry per protocol role, plus one for the
        // network itself.
        let sender_metrics = Arc::new(MetricsRegistry::default());
        let primary_metrics = Arc::new(MetricsRegistry::default());
        let secondary_metrics = Arc::new(MetricsRegistry::default());
        let receiver_metrics = Arc::new(MetricsRegistry::default());
        let net_metrics = Arc::new(MetricsRegistry::default());
        world.set_trace(Tracer::to(tap(net_metrics.clone())));
        world.set_gauges(net_metrics.clone());

        // Machine tracers write to shared sinks from whichever worker
        // thread runs their shard; route them through the world's trace
        // multiplexer so the observed record order stays serial.
        // (`set_trace` above wraps its own sink internally.)
        let sender_sink = world.wrap_sink(tap(sender_metrics.clone()));
        let primary_sink = world.wrap_sink(tap(primary_metrics.clone()));
        let secondary_sink = world.wrap_sink(tap(secondary_metrics.clone()));
        let receiver_sink = world.wrap_sink(tap(receiver_metrics.clone()));

        // Primary logger (+ replicas).
        let mut primary_cfg = LoggerConfig::primary(Self::GROUP, Self::SOURCE, primary, src_host);
        primary_cfg.retention = config.retention;
        primary_cfg.replicas = replicas.clone();
        primary_cfg.store_backend = config.log_store;
        let mut primary_logger = Logger::new(primary_cfg);
        primary_logger.set_tracer(Tracer::to(primary_sink.clone()));
        world.add_actor(
            primary,
            MachineActor::new(primary_logger, vec![Self::GROUP]),
        );
        for &r in &replicas {
            let mut c = LoggerConfig::replica(Self::GROUP, Self::SOURCE, r, primary, src_host);
            c.retention = config.retention;
            c.replicas = replicas.iter().copied().filter(|&x| x != r).collect();
            c.store_backend = config.log_store;
            let mut lg = Logger::new(c);
            lg.set_tracer(Tracer::to(primary_sink.clone()));
            world.add_actor(r, MachineActor::new(lg, vec![]));
        }

        // Regional loggers (three-level hierarchy, §7): parent = primary.
        // Their requesters are child loggers at other sites, so the
        // site-scoped re-multicast shortcut must stay off.
        for &reg in &regional_hosts {
            let mut c = LoggerConfig::secondary(Self::GROUP, Self::SOURCE, reg, primary, src_host);
            c.retention = config.retention;
            c.level = 1;
            c.site_remulticast = false;
            c.store_backend = config.log_store;
            let mut lg = Logger::new(c);
            lg.set_tracer(Tracer::to(secondary_sink.clone()));
            world.add_actor(reg, MachineActor::new(lg, vec![Self::GROUP]));
        }

        // Sites.
        for (site_idx, (sec, rxs)) in site_hosts.iter().enumerate() {
            if let Some(sec) = sec {
                // Site secondaries fetch from their regional logger when
                // one exists, else straight from the primary.
                let parent = match config.regional_fanout {
                    Some(fanout) => regional_hosts[site_idx / fanout.max(1)],
                    None => primary,
                };
                let mut c =
                    LoggerConfig::secondary(Self::GROUP, Self::SOURCE, *sec, parent, src_host);
                c.retention = config.retention;
                c.store_backend = config.log_store;
                c.level = if config.regional_fanout.is_some() {
                    2
                } else {
                    1
                };
                let mut lg = Logger::new(c);
                lg.set_tracer(Tracer::to(secondary_sink.clone()));
                world.add_actor(*sec, MachineActor::new(lg, vec![Self::GROUP]));
                secondaries.push(*sec);
            }
            let mut site_rxs = Vec::new();
            for &rx in rxs {
                let targets = match sec {
                    Some(s) => vec![*s, primary],
                    None => vec![primary],
                };
                let mut c = ReceiverConfig::new(Self::GROUP, Self::SOURCE, rx, src_host, targets);
                c.mode = config.mode;
                c.nack_delay = config.receiver_nack_delay;
                let mut machine = Receiver::new(c);
                machine.set_tracer(Tracer::to(receiver_sink.clone()));
                world.add_actor(rx, MachineActor::new(machine, vec![Self::GROUP]));
                site_rxs.push(rx);
            }
            receivers.push(site_rxs);
        }

        // Sender last, so its startup Acker Selection reaches secondaries
        // that have already joined the group.
        let mut sender_cfg = SenderConfig::new(Self::GROUP, Self::SOURCE, src_host, primary);
        sender_cfg.heartbeat = config.heartbeat;
        sender_cfg.scheme = config.scheme;
        sender_cfg.statack = config.statack.clone();
        sender_cfg.replicas = replicas.clone();
        sender_cfg.require_replica_ack = !replicas.is_empty();
        let mut sender = Sender::new(sender_cfg);
        sender.set_tracer(Tracer::to(sender_sink.clone()));
        world.add_actor(src_host, MachineActor::new(sender, vec![]));

        DisScenario {
            world,
            group: Self::GROUP,
            source: Self::SOURCE,
            src_host,
            primary,
            replicas,
            sites,
            secondaries,
            regionals: regional_hosts,
            receivers,
            sender_metrics,
            primary_metrics,
            secondary_metrics,
            receiver_metrics,
            net_metrics,
        }
    }

    /// Schedules a data transmission at `at` with `payload` (works
    /// before or after the world has started running).
    pub fn send_at(&mut self, at: SimTime, payload: impl Into<Bytes>) {
        let payload = payload.into();
        super::adapter::call_at(
            &mut self.world,
            self.src_host,
            at,
            move |s: &mut Sender, now, out| {
                s.send(now, payload.clone(), out);
            },
        );
    }

    /// Every receiver host, flattened.
    pub fn all_receivers(&self) -> Vec<HostId> {
        self.receivers.iter().flatten().copied().collect()
    }

    /// Delivered data sequence numbers at `rx` (in arrival order).
    pub fn delivered(&self, rx: HostId) -> Vec<u32> {
        self.world
            .actor::<MachineActor<Receiver>>(rx)
            .deliveries
            .iter()
            .map(|(_, d)| d.seq.raw())
            .collect()
    }

    /// Recovery latencies (loss detection → recovery) observed at `rx`.
    pub fn recovery_latencies(&self, rx: HostId) -> Vec<Duration> {
        self.world
            .actor::<MachineActor<Receiver>>(rx)
            .notices
            .iter()
            .filter_map(|(_, n)| match n {
                Notice::Recovered { after, .. } => Some(*after),
                _ => None,
            })
            .collect()
    }

    /// Recovery latencies across all receivers.
    pub fn all_recovery_latencies(&self) -> Vec<Duration> {
        self.all_receivers()
            .iter()
            .flat_map(|&rx| self.recovery_latencies(rx))
            .collect()
    }

    /// Fraction of receivers that delivered every sequence in `expect`.
    pub fn completeness(&self, expect: &[u32]) -> f64 {
        let rxs = self.all_receivers();
        let complete = rxs
            .iter()
            .filter(|&&rx| {
                let mut got = self.delivered(rx);
                got.sort_unstable();
                expect.iter().all(|s| got.binary_search(s).is_ok())
            })
            .count();
        complete as f64 / rxs.len().max(1) as f64
    }
}

/// Configuration for [`SrmScenario`].
#[derive(Clone)]
pub struct SrmScenarioConfig {
    /// Number of receiver sites.
    pub sites: usize,
    /// Members per site.
    pub receivers_per_site: usize,
    /// Session message interval.
    pub session_interval: Duration,
    /// Receiver-site parameters.
    pub site_params: SiteParams,
    /// Source-site parameters.
    pub source_site_params: SiteParams,
    /// Backbone loss.
    pub wan_loss: LossModel,
    /// World seed.
    pub seed: u64,
}

impl Default for SrmScenarioConfig {
    fn default() -> Self {
        SrmScenarioConfig {
            sites: 50,
            receivers_per_site: 20,
            session_interval: Duration::from_millis(250),
            site_params: SiteParams::distant(),
            source_site_params: SiteParams::distant(),
            wan_loss: LossModel::None,
            seed: 1995,
        }
    }
}

/// The same world shape as [`DisScenario`], populated with SRM members.
pub struct SrmScenario {
    /// The simulation.
    pub world: World,
    /// The group.
    pub group: GroupId,
    /// The source member's host.
    pub src_host: HostId,
    /// Receiver sites.
    pub sites: Vec<SiteId>,
    /// Per-site members.
    pub members: Vec<Vec<HostId>>,
    /// Trace metrics from the simulated network (`net_*` counters).
    pub net_metrics: Arc<MetricsRegistry>,
}

impl SrmScenario {
    /// Builds the SRM comparison world.
    pub fn build(config: SrmScenarioConfig) -> Self {
        let group = DisScenario::GROUP;
        let source = DisScenario::SOURCE;
        let mut b = TopologyBuilder::new();
        let source_site = b.site(config.source_site_params.clone());
        let src_host = b.host(source_site);
        let mut sites = Vec::new();
        let mut member_hosts = Vec::new();
        for _ in 0..config.sites {
            let site = b.site(config.site_params.clone());
            sites.push(site);
            member_hosts.push(b.hosts(site, config.receivers_per_site));
        }
        b.wan_loss(config.wan_loss.clone());
        let mut world = World::new(b.build(), config.seed);
        let net_metrics = Arc::new(MetricsRegistry::default());
        world.set_trace(Tracer::to(net_metrics.clone()));

        // Source member.
        let mut src_cfg = SrmConfig::new(group, src_host, source, src_host);
        src_cfg.session_interval = config.session_interval;
        world.add_actor(
            src_host,
            MachineActor::new(SrmMember::new(src_cfg), vec![group]),
        );

        // Receiver members, with delay knowledge to the source.
        let mut members = Vec::new();
        for hosts in &member_hosts {
            let mut site_members = Vec::new();
            for &h in hosts {
                let mut c = SrmConfig::new(group, h, source, src_host);
                c.session_interval = config.session_interval;
                let d = world.topology().base_latency(h, src_host);
                c.delay_to.insert(src_host, d);
                c.default_delay = d;
                world.add_actor(h, MachineActor::new(SrmMember::new(c), vec![group]));
                site_members.push(h);
            }
            members.push(site_members);
        }

        SrmScenario {
            world,
            group,
            src_host,
            sites,
            members,
            net_metrics,
        }
    }

    /// Schedules a data transmission from the source member (works
    /// before or after the world has started running).
    pub fn send_at(&mut self, at: SimTime, payload: impl Into<Bytes>) {
        let payload = payload.into();
        super::adapter::call_at(
            &mut self.world,
            self.src_host,
            at,
            move |m: &mut SrmMember, now, out| {
                m.send(now, payload.clone(), out);
            },
        );
    }

    /// All member hosts except the source.
    pub fn all_members(&self) -> Vec<HostId> {
        self.members.iter().flatten().copied().collect()
    }

    /// Recovery latencies across all members.
    pub fn all_recovery_latencies(&self) -> Vec<Duration> {
        self.all_members()
            .iter()
            .flat_map(|&h| {
                self.world
                    .actor::<MachineActor<SrmMember>>(h)
                    .notices
                    .iter()
                    .filter_map(|(_, n)| match n {
                        Notice::Recovered { after, .. } => Some(*after),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dis_scenario_builds_and_disseminates() {
        let mut sc = DisScenario::build(DisScenarioConfig {
            sites: 4,
            receivers_per_site: 3,
            ..DisScenarioConfig::default()
        });
        sc.send_at(SimTime::from_secs(1), "bridge destroyed");
        sc.world.run_until(SimTime::from_secs(5));
        for rx in sc.all_receivers() {
            assert_eq!(sc.delivered(rx), vec![1], "receiver {rx}");
        }
        assert_eq!(sc.completeness(&[1]), 1.0);
        // Primary logged it and the source buffer drained.
        let p = sc.world.actor::<MachineActor<Logger>>(sc.primary);
        assert!(p.machine().has(lbrm_wire::Seq(1)));
        let s = sc.world.actor::<MachineActor<Sender>>(sc.src_host);
        assert_eq!(s.machine().buffered(), 0);
    }

    #[test]
    fn srm_scenario_builds_and_disseminates() {
        let mut sc = SrmScenario::build(SrmScenarioConfig {
            sites: 3,
            receivers_per_site: 2,
            ..SrmScenarioConfig::default()
        });
        sc.send_at(SimTime::from_secs(1), "update");
        sc.world.run_until(SimTime::from_secs(3));
        for m in sc.all_members() {
            let a = sc.world.actor::<MachineActor<SrmMember>>(m);
            assert_eq!(a.deliveries.len(), 1);
        }
    }

    #[test]
    fn centralized_variant_has_no_secondaries() {
        let sc = DisScenario::build(DisScenarioConfig {
            sites: 2,
            receivers_per_site: 2,
            secondary_loggers: false,
            ..DisScenarioConfig::default()
        });
        assert!(sc.secondaries.is_empty());
    }
}
