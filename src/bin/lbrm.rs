//! `lbrm` — run LBRM endpoints over real UDP multicast from the shell.
//!
//! ```text
//! lbrm logger --group 1 --interface 127.0.0.1          # primary logging server
//! lbrm send   --group 1 --primary 127.0.0.1:PORT      # read lines from stdin, publish
//! lbrm recv   --group 1 --primary 127.0.0.1:PORT      # print deliveries
//! ```
//!
//! Start the logger first; it prints the `--primary` address the other
//! roles need. The sender publishes one data packet per stdin line and
//! keeps the variable-heartbeat promise while idle; receivers recover
//! losses from the logger and report freshness transitions.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::core::trace::{
    AdminServer, DoctorConfig, DoctorSidecar, MetricsRegistry, SerialFanoutSink, TraceSink, Tracer,
};
use lbrm::net::{
    addr_of, host_of, recv_gauge_probe, Endpoint, EndpointEvent, GroupMap, Transport, UdpTransport,
};
use lbrm::wire::{GroupId, SourceId};

const USAGE: &str = "\
lbrm — Log-Based Receiver-Reliable Multicast

USAGE:
    lbrm <ROLE> [OPTIONS]

ROLES:
    logger    run a primary logging server (start this first)
    send      publish one data packet per stdin line
    recv      subscribe and print deliveries

OPTIONS:
    --group <N>            multicast group id (default 1)
    --source <N>           source id (default 1)
    --port <P>             group UDP port (default 48195)
    --interface <IP>       IPv4 interface to bind (default 127.0.0.1)
    --primary <IP:PORT>    the logger's unicast address (send/recv)
    --maxit-ms <MS>        receiver freshness bound (default 250)
    --h-min-ms <MS>        heartbeat h_min (default 250)
    --h-max-s <S>          heartbeat h_max (default 32)
    --admin-addr <IP:PORT> attach the live doctor sidecar and serve its
                           HTTP admin surface here (/stats, /healthz,
                           /timelines/live, /anomalies/tail, /deltas/last,
                           /mem); any role
";

struct Opts {
    role: String,
    group: GroupId,
    source: SourceId,
    port: u16,
    interface: Ipv4Addr,
    primary: Option<SocketAddrV4>,
    maxit: Duration,
    h_min: Duration,
    h_max: Duration,
    admin_addr: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let role = args.next().ok_or("missing role")?;
    let mut opts = Opts {
        role,
        group: GroupId(1),
        source: SourceId(1),
        port: GroupMap::DEFAULT_PORT,
        interface: Ipv4Addr::LOCALHOST,
        primary: None,
        maxit: Duration::from_millis(250),
        h_min: Duration::from_millis(250),
        h_max: Duration::from_secs(32),
        admin_addr: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--group" => opts.group = GroupId(value()?.parse().map_err(|e| format!("{e}"))?),
            "--source" => opts.source = SourceId(value()?.parse().map_err(|e| format!("{e}"))?),
            "--port" => opts.port = value()?.parse().map_err(|e| format!("{e}"))?,
            "--interface" => opts.interface = value()?.parse().map_err(|e| format!("{e}"))?,
            "--primary" => opts.primary = Some(value()?.parse().map_err(|e| format!("{e}"))?),
            "--maxit-ms" => {
                opts.maxit = Duration::from_millis(value()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--h-min-ms" => {
                opts.h_min = Duration::from_millis(value()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--h-max-s" => {
                opts.h_max = Duration::from_secs(value()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--admin-addr" => opts.admin_addr = Some(value()?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The live doctor riding along with one role: sidecar, HTTP admin
/// surface, and the tracer the endpoint's machine should emit into.
/// Keep it alive for the process lifetime — dropping it stops both the
/// worker and the admin thread.
struct DoctorAttachment {
    _sidecar: DoctorSidecar,
    _admin: AdminServer,
    tracer: Tracer,
}

fn attach_doctor(addr: &str, transport: &UdpTransport) -> std::io::Result<DoctorAttachment> {
    let sidecar = DoctorSidecar::spawn(DoctorConfig::default());
    let registry = Arc::new(MetricsRegistry::default());
    sidecar.register_registry("udp", Arc::clone(&registry));
    sidecar.register_probe(recv_gauge_probe(
        transport.local_host(),
        transport.shared_recv_counters(),
        Arc::clone(&registry),
    ));
    let tracer = Tracer::to(Arc::new(SerialFanoutSink::new(vec![
        sidecar.sink() as Arc<dyn TraceSink>,
        registry as Arc<dyn TraceSink>,
    ])));
    let admin = AdminServer::bind(addr, sidecar.handle())?;
    eprintln!("doctor admin surface at http://{}/", admin.local_addr());
    Ok(DoctorAttachment {
        _sidecar: sidecar,
        _admin: admin,
        tracer,
    })
}

fn run(opts: Opts) -> std::io::Result<()> {
    let map = GroupMap::new(opts.port);
    let mut transport = UdpTransport::bind(opts.interface, map)?;
    let me = transport.local_host();
    let doctor = match &opts.admin_addr {
        Some(addr) => Some(attach_doctor(addr, &transport)?),
        None => None,
    };
    match opts.role.as_str() {
        "logger" => {
            transport.join(opts.group)?;
            eprintln!(
                "logging server up at {} (pass `--primary {}` to send/recv)",
                transport.local_addr(),
                transport.local_addr()
            );
            // The logger treats the sender's unicast handoffs and the
            // multicast stream alike; the source host is learned from
            // traffic, so use a placeholder until then: the paper's
            // primary only needs the source address for fetch-back,
            // which the handoff provides implicitly via NACK replies.
            let cfg = LoggerConfig::primary(opts.group, opts.source, me, me);
            let (mut ep, mut handle) = Endpoint::new(Logger::new(cfg), transport, vec![]);
            if let Some(d) = &doctor {
                ep.set_tracer(d.tracer.clone());
            }
            ep.spawn();
            loop {
                match handle.event() {
                    Some(EndpointEvent::Notice(n)) => eprintln!("notice: {n:?}"),
                    Some(_) => {}
                    None => break,
                }
            }
            Ok(())
        }
        "send" => {
            let primary = opts.primary.ok_or_else(|| {
                std::io::Error::other("send needs --primary (run `lbrm logger` first)")
            })?;
            let mut cfg = SenderConfig::new(opts.group, opts.source, me, host_of(primary));
            cfg.heartbeat.h_min = opts.h_min;
            cfg.heartbeat.h_max = opts.h_max;
            let (mut ep, handle) = Endpoint::new(Sender::new(cfg), transport, vec![]);
            if let Some(d) = &doctor {
                ep.set_tracer(d.tracer.clone());
            }
            ep.spawn();
            eprintln!(
                "publishing to {} via logger {primary}; type lines, ^D to end",
                opts.group
            );
            // The endpoint heartbeats on its own thread while we block
            // on stdin here.
            use std::io::BufRead;
            for line in std::io::stdin().lock().lines() {
                let Ok(l) = line else { break };
                let payload = Bytes::from(l.clone());
                handle.call(move |s: &mut Sender, now, out| s.send(now, payload.clone(), out))?;
                eprintln!("sent: {l}");
            }
            // Keep heartbeating briefly so receivers confirm the tail.
            std::thread::sleep(Duration::from_secs(1));
            Ok(())
        }
        "recv" => {
            let primary = opts.primary.ok_or_else(|| {
                std::io::Error::other("recv needs --primary (run `lbrm logger` first)")
            })?;
            transport.join(opts.group)?;
            let mut cfg = ReceiverConfig::new(
                opts.group,
                opts.source,
                me,
                host_of(primary),
                vec![host_of(primary)],
            );
            cfg.maxit = opts.maxit;
            cfg.heartbeat.h_min = opts.h_min;
            cfg.heartbeat.h_max = opts.h_max;
            let (mut ep, mut handle) = Endpoint::new(Receiver::new(cfg), transport, vec![]);
            if let Some(d) = &doctor {
                ep.set_tracer(d.tracer.clone());
            }
            ep.spawn();
            eprintln!(
                "listening on {} (logger {})",
                opts.group,
                addr_of(host_of(primary))
            );
            loop {
                match handle.event() {
                    Some(EndpointEvent::Delivery(d)) => println!(
                        "#{}{}: {}",
                        d.seq.raw(),
                        if d.recovered { " (recovered)" } else { "" },
                        String::from_utf8_lossy(&d.payload)
                    ),
                    Some(EndpointEvent::Notice(n)) => eprintln!("notice: {n:?}"),
                    None => break,
                }
            }
            Ok(())
        }
        other => Err(std::io::Error::other(format!(
            "unknown role {other}\n\n{USAGE}"
        ))),
    }
}
