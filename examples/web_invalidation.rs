//! WWW page invalidation (§4.3, Appendix A), end to end in the
//! simulator.
//!
//! An HTTP server associates its documents with a multicast group via
//! the `<!MULTICAST...>` first-line tag. Two browsers cache a page; the
//! server edits it twice. The first update is a plain invalidation
//! (RELOAD lights up); the second carries the new body (the §4.3
//! auto-dissemination extension) so caches refresh in place. One
//! browser misses an update and recovers it from the logging process —
//! arriving with the `RETRANS` semantics of Appendix A.
//!
//! ```sh
//! cargo run --example web_invalidation
//! ```

use std::net::Ipv4Addr;
use std::time::Duration;

use lbrm::apps::invalidation::{update_payload, BrowserCache, DocServer};
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::harness::MachineActor;
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm::wire::text::multicast_tag;
use lbrm::wire::{GroupId, SourceId};

const URL: &str = "http://www-DSG.Stanford.EDU/groupMembers.html";

fn main() {
    let group = GroupId(1);
    let source = SourceId(1);

    println!("HTML document invalidation (Appendix A)\n");
    println!(
        "document head: {}",
        multicast_tag(Ipv4Addr::new(234, 12, 29, 72))
    );
    println!("document url:  {URL}\n");

    let mut b = TopologyBuilder::new();
    let server_site = b.site(SiteParams::distant());
    let server_host = b.host(server_site);
    let log_host = b.host(server_site);
    let site = b.site(SiteParams::distant());
    let browser1 = b.host(site);
    // Browser 2 sits behind a flaky link that eats the first update.
    let flaky = b.site(SiteParams {
        tail_in_loss: LossModel::outage(SimTime::from_millis(9_900), Duration::from_millis(300)),
        ..SiteParams::distant()
    });
    let browser2 = b.host(flaky);
    let mut world = World::new(b.build(), 72);

    world.add_actor(
        log_host,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(group, source, log_host, server_host)),
            vec![group],
        ),
    );
    for browser in [browser1, browser2] {
        world.add_actor(
            browser,
            MachineActor::new(
                Receiver::new(ReceiverConfig::new(
                    group,
                    source,
                    browser,
                    server_host,
                    vec![log_host],
                )),
                vec![group],
            ),
        );
    }

    // The HTTP server: two edits to the same document.
    let mut sender = MachineActor::new(
        Sender::new(SenderConfig::new(group, source, server_host, log_host)),
        vec![],
    );
    sender.schedule(SimTime::from_secs(10), |s: &mut Sender, now, out| {
        let mut server = DocServer::new();
        server.publish_update(s, now, URL, None, out);
    });
    sender.schedule(SimTime::from_secs(20), |s: &mut Sender, now, out| {
        s.send(
            now,
            update_payload(s.next_seq(), URL, Some("<h1>members: 42</h1>")),
            out,
        );
    });
    world.add_actor(server_host, sender);

    world.run_until(SimTime::from_secs(40));

    for (name, browser) in [
        ("browser-1", browser1),
        ("browser-2 (flaky link)", browser2),
    ] {
        let a = world.actor::<MachineActor<Receiver>>(browser);
        let mut cache = BrowserCache::new();
        cache.store(URL, "<h1>members: 41</h1>");
        println!("{name}:");
        for (at, d) in &a.deliveries {
            let wire_line = String::from_utf8_lossy(&d.payload);
            let line = wire_line.lines().next().unwrap_or("");
            let shown = if d.recovered {
                line.replacen("TRANS", "RETRANS", 1)
            } else {
                line.to_owned()
            };
            cache.on_delivery(d).expect("valid invalidation");
            let state = if cache.is_valid(URL) {
                "cache fresh".to_owned()
            } else {
                "RELOAD highlighted".to_owned()
            };
            println!("  {at}  {shown}  → {state}");
        }
        println!(
            "  final body: {:?}  (invalidations: {}, auto-refreshed: {})\n",
            cache.get(URL).map(|p| p.body.clone()).unwrap_or_default(),
            cache.invalidations,
            cache.auto_refreshed
        );
    }
    println!(
        "browser-2 missed update #1, learned of it from the heartbeat, and\n\
         pulled the retransmission from the server's logging process."
    );
}
