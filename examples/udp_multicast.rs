//! LBRM over real UDP multicast on the loopback interface.
//!
//! Three processes-worth of endpoints in one binary: a sender, a primary
//! logging server, and a receiver, each with its own sockets, exchanging
//! genuine multicast datagrams on `239.195.0.1`. Environments without
//! multicast support print a note and exit cleanly.
//!
//! ```sh
//! cargo run --example udp_multicast
//! ```

use std::net::Ipv4Addr;
use std::time::Duration;

use bytes::Bytes;
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::net::{Endpoint, EndpointEvent, GroupMap, Transport, UdpTransport};
use lbrm::wire::{GroupId, SourceId};

const GROUP: GroupId = GroupId(1);
const SRC: SourceId = SourceId(1);

fn main() {
    let port = 49_195;
    let bind = |_: &str| UdpTransport::bind(Ipv4Addr::LOCALHOST, GroupMap::new(port));

    let tx_t = match bind("sender") {
        Ok(t) => t,
        Err(e) => {
            return println!("UDP unavailable here ({e}); try `cargo run --example quickstart`")
        }
    };
    let mut log_t = bind("logger").expect("bind logger");
    let mut rx_t = bind("receiver").expect("bind receiver");
    if let Err(e) = log_t.join(GROUP).and_then(|()| rx_t.join(GROUP)) {
        return println!("multicast join failed ({e}); try `cargo run --example quickstart`");
    }

    let src_host = tx_t.local_host();
    let log_host = log_t.local_host();
    println!("sender   at {}", tx_t.local_addr());
    println!("logger   at {}", log_t.local_addr());
    println!("receiver at {}", rx_t.local_addr());
    println!("group    at 239.195.0.1:{port}\n");

    let (ep, sender) = Endpoint::new(
        Sender::new(SenderConfig::new(GROUP, SRC, src_host, log_host)),
        tx_t,
        vec![],
    );
    ep.spawn();
    let (ep, _logger) = Endpoint::new(
        Logger::new(LoggerConfig::primary(GROUP, SRC, log_host, src_host)),
        log_t,
        vec![],
    );
    ep.spawn();
    let rx_host = rx_t.local_host();
    let (ep, mut receiver) = Endpoint::new(
        Receiver::new(ReceiverConfig::new(
            GROUP,
            SRC,
            rx_host,
            src_host,
            vec![log_host],
        )),
        rx_t,
        vec![],
    );
    ep.spawn();

    std::thread::sleep(Duration::from_millis(100));
    for (i, text) in [
        "the bridge stands",
        "the bridge is DESTROYED",
        "rubble cleared",
    ]
    .iter()
    .enumerate()
    {
        let payload = Bytes::from(text.to_string());
        sender
            .call(move |s: &mut Sender, now, out| s.send(now, payload.clone(), out))
            .expect("sender endpoint");
        println!("published #{}: {text}", i + 1);
        std::thread::sleep(Duration::from_millis(300));
    }

    let mut got = 0;
    while got < 3 {
        match receiver.event_timeout(Duration::from_secs(5)) {
            Some(EndpointEvent::Delivery(d)) => {
                got += 1;
                println!(
                    "received  #{} ({}): {}",
                    d.seq.raw(),
                    if d.recovered {
                        "recovered"
                    } else {
                        "multicast"
                    },
                    String::from_utf8_lossy(&d.payload)
                );
            }
            Some(EndpointEvent::Notice(n)) => println!("notice: {n:?}"),
            None => {
                println!("(no more events — multicast routing may be restricted here)");
                break;
            }
        }
    }
    println!("\ndone: real UDP multicast with LBRM sequencing, heartbeats and logging.");
}
