//! Stock-quote dissemination (§4.1) over real threaded endpoints.
//!
//! A quote feed publishes prices for three symbols through an LBRM
//! sender; broker terminals hold [`QuoteBoard`]s fed by LBRM receivers.
//! One terminal is partitioned during a price move and recovers the
//! missed quotes from the logging server after reconnecting — the
//! "intermittent connectivity" story, end to end on the in-process hub
//! transport (swap in `UdpTransport` for real multicast).
//!
//! ```sh
//! cargo run --example stock_ticker
//! ```

use std::time::Duration;

use lbrm::apps::quotes::{QuoteBoard, QuoteFeed};
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::net::{Endpoint, EndpointEvent, Hub};
use lbrm::wire::{GroupId, HostId, SourceId};

const GROUP: GroupId = GroupId(3);
const SRC: SourceId = SourceId(1);
const FEED: HostId = HostId(1);
const LOGGER: HostId = HostId(2);
const DESK_A: HostId = HostId(10);
const DESK_B: HostId = HostId(11);

fn main() {
    let hub = Hub::new();

    let (ep, feed_handle) = Endpoint::new(
        Sender::new(SenderConfig::new(GROUP, SRC, FEED, LOGGER)),
        hub.attach(FEED),
        vec![],
    );
    ep.spawn();

    let (ep, _logger) = Endpoint::new(
        Logger::new(LoggerConfig::primary(GROUP, SRC, LOGGER, FEED)),
        hub.attach(LOGGER),
        vec![GROUP],
    );
    ep.spawn();

    let mut desks = Vec::new();
    for host in [DESK_A, DESK_B] {
        let (ep, handle) = Endpoint::new(
            Receiver::new(ReceiverConfig::new(GROUP, SRC, host, FEED, vec![LOGGER])),
            hub.attach(host),
            vec![GROUP],
        );
        ep.spawn();
        desks.push((host, handle, QuoteBoard::new()));
    }
    // Let everyone join before the first quote.
    std::thread::sleep(Duration::from_millis(20));

    let mut feed = QuoteFeed::new();

    println!("stock ticker over LBRM (hub transport)\n");

    // Three rounds of quotes; desk B is partitioned during round two.
    let rounds: [&[(&str, u64)]; 3] = [
        &[("ACME", 10_000), ("GLOBX", 4_250), ("INITECH", 99)],
        &[("ACME", 10_450), ("GLOBX", 4_110)],
        &[("ACME", 10_700), ("INITECH", 120)],
    ];
    for (i, quotes) in rounds.iter().enumerate() {
        if i == 1 {
            println!("-- desk B loses connectivity --");
            hub.set_partitioned(DESK_B, true);
        }
        for &(symbol, cents) in *quotes {
            let sym = symbol.to_owned();
            feed_send(&feed_handle, &mut feed, sym, cents);
        }
        std::thread::sleep(Duration::from_millis(60));
        if i == 1 {
            println!("-- desk B reconnects --");
            hub.set_partitioned(DESK_B, false);
        }
    }

    // Give recovery (heartbeat-driven detection + NACK) time to finish.
    std::thread::sleep(Duration::from_millis(800));

    for (host, handle, board) in &mut desks {
        while let Some(ev) = handle.event_timeout(Duration::from_millis(10)) {
            if let EndpointEvent::Delivery(d) = ev {
                board.on_delivery(&d);
            }
        }
        println!(
            "\ndesk {host}: {} quotes applied, {} superseded",
            board.applied, board.superseded
        );
        for symbol in ["ACME", "GLOBX", "INITECH"] {
            if let Some(q) = board.quote(symbol) {
                println!(
                    "  {symbol:<8} ${}.{:02}  (rev {})",
                    q.price_cents / 100,
                    q.price_cents % 100,
                    q.revision
                );
            }
        }
    }
    println!(
        "\nBoth desks converge to identical final prices: desk B recovered the\n\
         quotes it missed from the logging server, and last-revision-wins kept\n\
         recovered (stale) quotes from regressing fresher ones."
    );
}

/// Publishes one quote through the sender endpoint.
fn feed_send(
    handle: &lbrm::net::EndpointHandle<Sender>,
    feed: &mut QuoteFeed,
    symbol: String,
    cents: u64,
) {
    // QuoteFeed needs the Sender to publish; run it inside the endpoint.
    let mut feed_local = std::mem::take(feed);
    let (tx, rx) = std::sync::mpsc::channel();
    handle
        .call(move |s: &mut Sender, now, out| {
            let q = feed_local.publish(s, now, &symbol, cents, out);
            let _ = tx.send((feed_local, q));
        })
        .expect("endpoint alive");
    let (feed_back, q) = rx.recv().expect("publish ran");
    *feed = feed_back;
    println!(
        "published {:<8} ${}.{:02} (rev {})",
        q.symbol,
        q.price_cents / 100,
        q.price_cents % 100,
        q.revision
    );
}
