//! DIS dynamic terrain (§1): the destroyed bridge.
//!
//! A bridge entity is static for a long time, then destroyed mid-
//! exercise. Tank simulators at three sites keep a [`TerrainView`]; one
//! site is behind a congested tail circuit and misses the destruction
//! update. The variable heartbeat reveals the loss within a fraction of
//! a second, the site's secondary logger repairs it, and no tank drives
//! onto the dead bridge.
//!
//! ```sh
//! cargo run --example terrain_dis
//! ```

use std::time::Duration;

use lbrm::apps::terrain::{EntityState, TerrainEntity, TerrainView};
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::harness::{adapter::to_core, MachineActor};
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm::wire::{GroupId, HostId, SourceId};

const BRIDGE: u64 = 4242;

fn main() {
    let group = GroupId(7);
    let source = SourceId(BRIDGE);

    let mut b = TopologyBuilder::new();
    let hq = b.site(SiteParams::distant());
    let src_host = b.host(hq);
    let primary = b.host(hq);

    let mut sites = Vec::new();
    for i in 0..3 {
        let params = if i == 1 {
            // Site 1 is congested exactly when the bridge blows up.
            SiteParams {
                tail_in_loss: LossModel::outage(
                    SimTime::from_millis(59_900),
                    Duration::from_millis(400),
                ),
                ..SiteParams::distant()
            }
        } else {
            SiteParams::distant()
        };
        let site = b.site(params);
        let sec = b.host(site);
        let tank = b.host(site);
        sites.push((site, sec, tank));
    }
    let mut world = World::new(b.build(), 1995);

    world.add_actor(
        primary,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(group, source, primary, src_host)),
            vec![group],
        ),
    );
    for &(_, sec, tank) in &sites {
        world.add_actor(
            sec,
            MachineActor::new(
                Logger::new(LoggerConfig::secondary(
                    group, source, sec, primary, src_host,
                )),
                vec![group],
            ),
        );
        world.add_actor(
            tank,
            MachineActor::new(
                Receiver::new(ReceiverConfig::new(
                    group,
                    source,
                    tank,
                    src_host,
                    vec![sec, primary],
                )),
                vec![group],
            ),
        );
    }

    // The bridge: intact at t = 10 s (initial announcement), destroyed
    // at t = 60 s.
    let mut sender = MachineActor::new(
        Sender::new(SenderConfig::new(group, source, src_host, primary)),
        vec![],
    );
    sender.schedule(SimTime::from_secs(10), |s: &mut Sender, now, out| {
        let mut bridge = TerrainEntity::new(BRIDGE);
        bridge.transition(s, now, EntityState::Intact, out);
    });
    sender.schedule(SimTime::from_secs(60), |s: &mut Sender, now, out| {
        let mut bridge = TerrainEntity::new(BRIDGE);
        bridge.transition(s, now, EntityState::Destroyed, out);
    });
    world.add_actor(src_host, sender);

    // Probe each tank's view as the exercise unfolds.
    let mut report = Vec::new();
    for probe_at in [30u64, 61, 62, 75] {
        world.run_until(SimTime::from_secs(probe_at));
        let mut row = format!("t = {probe_at:>3} s:");
        for (i, &(_, _, tank)) in sites.iter().enumerate() {
            let view = tank_view(&world, tank);
            let passable = view.passable(BRIDGE);
            row.push_str(&format!(
                "  site{} tank: {:<9} cross? {}",
                i,
                format!("{:?}", view.state(BRIDGE).unwrap_or(EntityState::Intact)),
                if passable { "yes" } else { "NO " }
            ));
        }
        report.push(row);
    }

    println!("DIS dynamic terrain: the bridge at entity id {BRIDGE}\n");
    println!("(bridge destroyed at t = 60 s; site1's tail circuit congested 59.9–60.3 s)\n");
    for r in report {
        println!("{r}");
    }

    // How did site1's tank learn the truth?
    let (_, _, tank1) = sites[1];
    let a = world.actor::<MachineActor<Receiver>>(tank1);
    println!("\nsite1 tank event log:");
    for (at, n) in &a.notices {
        println!("  {at}  {n:?}");
    }
    let recovered = a.deliveries.iter().filter(|(_, d)| d.recovered).count();
    println!(
        "\nsite1 recovered {recovered} update(s) from its local logging server —\n\
         no tank ever decided to cross a destroyed bridge."
    );
}

/// Rebuilds a tank's terrain view from its delivery/notice log.
fn tank_view(world: &World, tank: HostId) -> TerrainView {
    let a = world.actor::<MachineActor<Receiver>>(tank);
    let mut view = TerrainView::new();
    view.load(BRIDGE);
    for (_, d) in &a.deliveries {
        view.on_delivery(d);
    }
    // Replay freshness state up to now.
    for (at, n) in &a.notices {
        let _ = at;
        view.on_notice(n);
    }
    let _ = to_core(world.now());
    view
}
