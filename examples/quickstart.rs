//! Quickstart: a complete LBRM session in the deterministic simulator.
//!
//! One low-rate source (think: a bridge in a DIS exercise), a primary
//! logging server beside it, and two remote sites — each with a
//! secondary logging server and three receivers. One site's tail
//! circuit drops an update; watch the receivers detect the loss via the
//! variable heartbeat and recover it from their *local* logger, without
//! flooding the WAN.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use bytes::Bytes;
use lbrm::core::logger::{Logger, LoggerConfig};
use lbrm::core::machine::Notice;
use lbrm::core::receiver::{Receiver, ReceiverConfig};
use lbrm::core::sender::{Sender, SenderConfig};
use lbrm::harness::MachineActor;
use lbrm::sim::loss::LossModel;
use lbrm::sim::time::SimTime;
use lbrm::sim::topology::{SiteParams, TopologyBuilder};
use lbrm::sim::world::World;
use lbrm::wire::{GroupId, SourceId};

fn main() {
    let group = GroupId(1);
    let source = SourceId(1);

    // ---- topology: source site + two receiver sites --------------------
    let mut b = TopologyBuilder::new();
    let source_site = b.site(SiteParams::distant());
    let src_host = b.host(source_site);
    let primary = b.host(source_site);

    let site_a = b.site(SiteParams::distant());
    let sec_a = b.host(site_a);
    let rx_a = b.hosts(site_a, 3);

    // Site B's inbound tail circuit is down 4.95 s – 5.25 s: it will
    // lose the second update (sent at t = 5 s).
    let site_b = b.site(SiteParams {
        tail_in_loss: LossModel::outage(SimTime::from_millis(4_950), Duration::from_millis(300)),
        ..SiteParams::distant()
    });
    let sec_b = b.host(site_b);
    let rx_b = b.hosts(site_b, 3);

    let mut world = World::new(b.build(), 2026);

    // ---- logging hierarchy ---------------------------------------------
    world.add_actor(
        primary,
        MachineActor::new(
            Logger::new(LoggerConfig::primary(group, source, primary, src_host)),
            vec![group],
        ),
    );
    for sec in [sec_a, sec_b] {
        world.add_actor(
            sec,
            MachineActor::new(
                Logger::new(LoggerConfig::secondary(
                    group, source, sec, primary, src_host,
                )),
                vec![group],
            ),
        );
    }

    // ---- receivers: recover from the site secondary, then the primary --
    let mut receivers = Vec::new();
    for (sec, rxs) in [(sec_a, &rx_a), (sec_b, &rx_b)] {
        for &rx in rxs {
            world.add_actor(
                rx,
                MachineActor::new(
                    Receiver::new(ReceiverConfig::new(
                        group,
                        source,
                        rx,
                        src_host,
                        vec![sec, primary],
                    )),
                    vec![group],
                ),
            );
            receivers.push(rx);
        }
    }

    // ---- the source: three updates, seconds apart -----------------------
    let mut sender = MachineActor::new(
        Sender::new(SenderConfig::new(group, source, src_host, primary)),
        vec![],
    );
    for (i, at) in [1u64, 5, 9].iter().enumerate() {
        let payload = Bytes::from(format!("terrain-update-{}", i + 1));
        sender.schedule(SimTime::from_secs(*at), move |s: &mut Sender, now, out| {
            s.send(now, payload.clone(), out);
        });
    }
    world.add_actor(src_host, sender);

    // ---- run -------------------------------------------------------------
    world.run_until(SimTime::from_secs(20));

    // ---- report ----------------------------------------------------------
    println!(
        "LBRM quickstart — 1 source, 1 primary logger, 2 sites x (1 secondary + 3 receivers)\n"
    );
    for &rx in &receivers {
        let a = world.actor::<MachineActor<Receiver>>(rx);
        let site = world.topology().site_of(rx);
        print!("receiver {rx} ({site}): delivered [");
        for (i, (_, d)) in a.deliveries.iter().enumerate() {
            if i > 0 {
                print!(", ");
            }
            print!("#{}{}", d.seq.raw(), if d.recovered { "*" } else { "" });
        }
        println!("]   (* = recovered via logger)");
        for (at, n) in &a.notices {
            match n {
                Notice::LossDetected {
                    first,
                    last,
                    signal,
                } => println!(
                    "    {at}  loss detected: #{}..#{} via {signal:?}",
                    first.raw(),
                    last.raw()
                ),
                Notice::Recovered { seq, after } => {
                    println!("    {at}  recovered #{} after {after:?}", seq.raw())
                }
                _ => {}
            }
        }
    }
    let wan_nacks = world
        .stats()
        .class_kind(lbrm::sim::SegmentClass::Wan, "nack")
        .carried;
    println!(
        "\nNACKs that crossed the WAN: {wan_nacks} — site B's secondary sent one;\n\
         its three receivers all recovered locally (distributed logging at work)."
    );
}
